/// \file roccheck_main.cpp
/// \brief Seed-sweep driver for the concurrency checker.
///
///   roccheck --scenario NAME --seeds N [--seed BASE] [--out DIR]
///            [--expect-race] [--preempt P] [--lock-graph-out PATH]
///            [--alloc-report-out PATH]
///
/// Runs NAME under seeds BASE..BASE+N-1, one fresh Session + Explorer per
/// seed.  Any finding (or scenario failure) prints the seed that produced
/// it — rerunning with --seed SEED --seeds 1 replays the schedule exactly
/// — and, with --out, writes the report and the schedule trace JSON.
///
/// --expect-race inverts the contract for the regression fixture: the
/// sweep FAILS unless at least one seed finds a race, and the finding
/// seed is replayed to prove determinism (identical report and trace).

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/alloc_hook.h"
#include "check/checker.h"
#include "check/explorer.h"
#include "check/scenarios.h"

namespace {

struct Args {
  std::string scenario;
  uint64_t seeds = 1;
  uint64_t base_seed = 1;
  std::string out_dir;
  std::string lock_graph_out;
  std::string alloc_report_out;
  bool expect_race = false;
  double preempt = 0.125;
};

/// Lock-order edges merged across every seed of the sweep, keyed by
/// runtime lock names (first witness stack wins).  Written as the
/// runtime-lock-order-graph JSON that the rocanalyze subset check
/// (tools/check_lock_subset.py) compares against the static graph.
std::map<std::pair<std::string, std::string>,
         std::vector<std::string>> g_merged_edges;

void merge_edges(const roc::check::Session& session) {
  for (auto& e : session.lock_order_edges())
    g_merged_edges.try_emplace({e.from, e.to}, std::move(e.stack));
}

bool write_merged_graph(const std::string& path) {
  std::vector<roc::check::LockOrderEdge> edges;
  edges.reserve(g_merged_edges.size());
  for (const auto& [key, stack] : g_merged_edges)
    edges.push_back(roc::check::LockOrderEdge{key.first, key.second, stack});
  std::string doc;
  roc::check::write_lock_order_json(edges, &doc);
  std::ofstream f(path);
  f << doc;
  return static_cast<bool>(f);
}

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --scenario NAME --seeds N [--seed BASE] [--out DIR]"
               " [--expect-race] [--preempt P] [--lock-graph-out PATH]"
               " [--alloc-report-out PATH]"
               "\n  scenarios:";
  for (const auto& n : roc::check::scenario_names()) std::cerr << " " << n;
  std::cerr << "\n";
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      a.scenario = value();
    } else if (arg == "--seeds") {
      a.seeds = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      a.base_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      a.out_dir = value();
    } else if (arg == "--lock-graph-out") {
      a.lock_graph_out = value();
    } else if (arg == "--alloc-report-out") {
      a.alloc_report_out = value();
    } else if (arg == "--expect-race") {
      a.expect_race = true;
    } else if (arg == "--preempt") {
      a.preempt = std::strtod(value().c_str(), nullptr);
    } else {
      usage(argv[0]);
    }
  }
  if (a.scenario.empty() || a.seeds == 0) usage(argv[0]);
  return a;
}

struct RunOutput {
  std::string error;
  std::string report;
  std::string trace;
  bool found_race = false;
  bool found_cycle = false;
};

RunOutput run_one(const Args& a, uint64_t seed) {
  roc::check::Session session;
  roc::check::Explorer::Options eopts;
  eopts.seed = seed;
  eopts.preempt_probability = a.preempt;
  roc::check::Explorer explorer(eopts);
  RunOutput out;
  out.error = roc::check::run_scenario(a.scenario, session, explorer).error;
  out.report = session.report();
  if (!a.lock_graph_out.empty()) merge_edges(session);
  out.trace = explorer.trace_json();
  for (const auto& f : session.findings()) {
    if (f.kind == roc::check::Finding::Kind::kRace) out.found_race = true;
    if (f.kind == roc::check::Finding::Kind::kLockCycle)
      out.found_cycle = true;
  }
  return out;
}

void dump(const Args& a, uint64_t seed, const RunOutput& out) {
  if (a.out_dir.empty()) return;
  const std::string stem =
      a.out_dir + "/" + a.scenario + "-seed" + std::to_string(seed);
  std::ofstream(stem + ".report.txt") << out.report;
  std::ofstream(stem + ".trace.json") << out.trace << "\n";
  std::cout << "roccheck: artifacts written to " << stem << ".{report.txt,trace.json}\n";
}

}  // namespace

/// Flushes the merged runtime graph and the interposer's alloc-scope
/// registry (when requested).  Called on every main() exit path so
/// partial sweeps still leave inspectable artifacts.
int finish(const Args& a, int rc) {
  if (!a.lock_graph_out.empty()) {
    if (!write_merged_graph(a.lock_graph_out)) {
      std::cerr << "roccheck: cannot write " << a.lock_graph_out << "\n";
      return rc == 0 ? 2 : rc;
    }
    std::cout << "roccheck: runtime lock-order graph ("
              << g_merged_edges.size() << " edges) written to "
              << a.lock_graph_out << "\n";
  }
  if (!a.alloc_report_out.empty()) {
    if (!roc::check::write_alloc_report(a.alloc_report_out)) {
      std::cerr << "roccheck: cannot write " << a.alloc_report_out << "\n";
      return rc == 0 ? 2 : rc;
    }
    std::cout << "roccheck: runtime alloc report ("
              << roc::check::alloc_registry_snapshot().size()
              << " scope label(s)) written to " << a.alloc_report_out
              << "\n";
  }
  return rc;
}

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  for (uint64_t i = 0; i < a.seeds; ++i) {
    const uint64_t seed = a.base_seed + i;
    RunOutput out;
    try {
      out = run_one(a, seed);
    } catch (const std::exception& e) {
      std::cerr << "roccheck: scenario=" << a.scenario << " seed=" << seed
                << " crashed: " << e.what() << "\n";
      return finish(a, 2);
    }

    const bool findings = !out.report.empty();
    if (!a.out_dir.empty()) dump(a, seed, out);
    if (!out.error.empty()) {
      std::cerr << "roccheck: scenario=" << a.scenario << " seed=" << seed
                << " FAILED: " << out.error << "\n"
                << out.report
                << "replay: roccheck --scenario " << a.scenario << " --seed "
                << seed << " --seeds 1 --preempt " << a.preempt << "\n";
      return finish(a, 1);
    }

    if (findings && !a.expect_race) {
      std::cerr << "roccheck: scenario=" << a.scenario << " seed=" << seed
                << " found problems:\n"
                << out.report << "replay: roccheck --scenario " << a.scenario
                << " --seed " << seed << " --seeds 1 --preempt " << a.preempt
                << "\n";
      return finish(a, 1);
    }

    if (findings && a.expect_race && out.found_race) {
      // The fixture tripped, as it must.  Replay the seed to prove the
      // schedule (and therefore the finding) is deterministic.
      const RunOutput replay = run_one(a, seed);
      if (replay.report != out.report || replay.trace != out.trace) {
        std::cerr << "roccheck: scenario=" << a.scenario << " seed=" << seed
                  << " REPLAY DIVERGED (nondeterministic schedule)\n";
        return finish(a, 1);
      }
      std::cout << "roccheck: scenario=" << a.scenario << " seed=" << seed
                << " caught the planted race after " << (i + 1)
                << " seed(s); replay deterministic\n"
                << out.report;
      return finish(a, 0);
    }
  }

  if (a.expect_race) {
    std::cerr << "roccheck: scenario=" << a.scenario << ": NO seed in ["
              << a.base_seed << ", " << (a.base_seed + a.seeds)
              << ") found the planted race\n";
    return finish(a, 1);
  }
  std::cout << "roccheck: scenario=" << a.scenario << ": " << a.seeds
            << " seed(s) clean (base " << a.base_seed << ")\n";
  return finish(a, 0);
}
