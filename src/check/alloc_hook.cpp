/// \file alloc_hook.cpp
/// \brief Global operator new/delete interposer + AllocGate implementation.
///
/// Everything here must be async-allocation-safe: the counting path runs
/// inside operator new, so it uses only POD thread_locals, relaxed
/// atomics and raw malloc/free (which are NOT interposed -- the wrappers
/// below sit on top of them, so internal bookkeeping via malloc is
/// invisible to the counters and the raw totals stay exact for product
/// allocations).  Registry merging and symbolization happen at scope
/// exit / snapshot time under an exempt bracket.

#include "check/alloc_hook.h"

#if defined(ROCPIO_CHECK)

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <new>

#include <unistd.h>
#if defined(__GLIBC__)
#include <execinfo.h>
#endif

#include "util/hot.h"

namespace roc::check {
namespace {

constexpr int kMaxBacktraces = 4;   // captured per scope label
constexpr int kBacktraceDepth = 24;

/// One open ROC_ASSERT_NO_ALLOC scope on a thread.  Allocated with raw
/// malloc so scope setup never perturbs the counters it guards.
struct ScopeRec {
  const char* label;
  ScopeRec* parent;
  uint64_t allocs;
  uint64_t bytes;
  int nbt;
  int bt_len[kMaxBacktraces];
  void* bt[kMaxBacktraces][kBacktraceDepth];
};

thread_local uint64_t t_allocs = 0;
thread_local uint64_t t_frees = 0;
thread_local uint64_t t_bytes = 0;
thread_local uint64_t t_charged = 0;  // unsanctioned (non-exempt) allocs
thread_local int t_exempt = 0;
thread_local ScopeRec* t_top = nullptr;

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<int> g_mode{static_cast<int>(AllocMode::kCount)};

struct LabelStats {
  uint64_t entries = 0;
  uint64_t allocs = 0;
  uint64_t bytes = 0;
  int nbt = 0;
  int bt_len[kMaxBacktraces];
  void* bt[kMaxBacktraces][kBacktraceDepth];
};

// Raw std::mutex on purpose: roc::Mutex's lock-order tracking allocates,
// which must never happen inside the interposer.
std::mutex& registry_mutex() {  // LINT-ALLOW(raw-sync): see above.
  static std::mutex m;  // LINT-ALLOW(raw-sync): see above.
  return m;
}

std::map<std::string, LabelStats>& registry() {
  static std::map<std::string, LabelStats>* r =
      new std::map<std::string, LabelStats>();  // leaked: outlives exit paths
  return *r;
}

[[noreturn]] void die_no_alloc(const char* label, void* const* frames,
                               int nframes) {
  // Raw fds only: this runs inside operator new with a scope violated.
  char buf[256];
  int n = std::snprintf(buf, sizeof buf,
                        "ROC_ASSERT_NO_ALLOC violated: heap allocation "
                        "inside scope '%s'\n",
                        label != nullptr ? label : "?");
  if (n > 0) {
    ssize_t ignored = write(2, buf, static_cast<size_t>(n));
    (void)ignored;
  }
#if defined(__GLIBC__)
  if (nframes > 0) backtrace_symbols_fd(frames, nframes, 2);
#else
  (void)frames;
  (void)nframes;
#endif
  std::abort();
}

/// The single counting choke point for every replaced allocation function.
void on_alloc(std::size_t n) {
  ++t_allocs;
  t_bytes += n;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (t_exempt != 0) return;
  // Charged even with no scope open: benches read this counter directly to
  // report unsanctioned allocs/op without paying for a scope per iteration.
  ++t_charged;
  if (t_top == nullptr) return;

  void* frames[kBacktraceDepth];
  int got = 0;
#if defined(__GLIBC__)
  // backtrace() may allocate internally on first use; bracket it so any
  // re-entrant operator new is counted but not charged (and cannot
  // recurse back into backtrace()).
  ++t_exempt;
  got = backtrace(frames, kBacktraceDepth);
  --t_exempt;
#endif
  for (ScopeRec* s = t_top; s != nullptr; s = s->parent) {
    ++s->allocs;
    s->bytes += n;
    if (got > 0 && s->nbt < kMaxBacktraces) {
      std::memcpy(s->bt[s->nbt], frames, sizeof(void*) * got);
      s->bt_len[s->nbt] = got;
      ++s->nbt;
    }
  }
  if (g_mode.load(std::memory_order_relaxed) ==
      static_cast<int>(AllocMode::kAbort)) {
    die_no_alloc(t_top->label, frames, got);
  }
}

void on_free() {
  ++t_frees;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

void* do_alloc(std::size_t n, std::size_t align) {
  if (n == 0) n = 1;
  void* p;
  if (align > alignof(std::max_align_t)) {
    std::size_t rounded = (n + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  } else {
    p = std::malloc(n);
  }
  if (p != nullptr) on_alloc(n);
  return p;
}

void* do_alloc_throwing(std::size_t n, std::size_t align) {
  for (;;) {
    void* p = do_alloc(n, align);
    if (p != nullptr) return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc();
    h();
  }
}

void do_free(void* p) {
  if (p == nullptr) return;
  on_free();
  std::free(p);
}

void escape_json(const std::string& s, std::string& out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

/// Installs the gate (and the env-selected mode) before main().
struct GateInstaller {
  roc::hot::AllocGate gate;
  GateInstaller() {
    gate.scope_enter = &alloc_scope_enter;
    gate.scope_exit = &alloc_scope_exit;
    gate.exempt_enter = &alloc_exempt_enter;
    gate.exempt_exit = &alloc_exempt_exit;
    const char* mode = std::getenv("ROCPIO_ALLOC_MODE");
    if (mode != nullptr && std::strcmp(mode, "abort") == 0) {
      g_mode.store(static_cast<int>(AllocMode::kAbort),
                   std::memory_order_relaxed);
    }
    roc::hot::set_gate(&gate);
  }
};
GateInstaller g_installer;

}  // namespace

uint64_t thread_allocs() { return t_allocs; }
uint64_t thread_frees() { return t_frees; }
uint64_t thread_alloc_bytes() { return t_bytes; }
uint64_t thread_charged_allocs() { return t_charged; }
uint64_t total_allocs() { return g_allocs.load(std::memory_order_relaxed); }
uint64_t total_frees() { return g_frees.load(std::memory_order_relaxed); }

AllocMode alloc_mode() {
  return static_cast<AllocMode>(g_mode.load(std::memory_order_relaxed));
}

void set_alloc_mode(AllocMode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

void* alloc_scope_enter(const char* label) {
  auto* s = static_cast<ScopeRec*>(std::malloc(sizeof(ScopeRec)));
  if (s == nullptr) return nullptr;  // degrade to not charging
  s->label = label;
  s->parent = t_top;
  s->allocs = 0;
  s->bytes = 0;
  s->nbt = 0;
  t_top = s;
  return s;
}

void alloc_scope_exit(void* token) {
  auto* s = static_cast<ScopeRec*>(token);
  if (s == nullptr) return;
  // Tolerate interleaved destruction order by popping through to `s`.
  while (t_top != nullptr && t_top != s) t_top = t_top->parent;
  if (t_top == s) t_top = s->parent;
  ++t_exempt;  // registry merge allocates map nodes / strings
  {
    std::lock_guard<std::mutex> g(registry_mutex());  // LINT-ALLOW(raw-sync)
    LabelStats& e = registry()[s->label != nullptr ? s->label : "?"];
    ++e.entries;
    e.allocs += s->allocs;
    e.bytes += s->bytes;
    for (int i = 0; i < s->nbt && e.nbt < kMaxBacktraces; ++i) {
      std::memcpy(e.bt[e.nbt], s->bt[i], sizeof(void*) * s->bt_len[i]);
      e.bt_len[e.nbt] = s->bt_len[i];
      ++e.nbt;
    }
  }
  --t_exempt;
  std::free(s);
}

void* alloc_exempt_enter() {
  ++t_exempt;
  return nullptr;
}

void alloc_exempt_exit(void* /*token*/) {
  if (t_exempt > 0) --t_exempt;
}

std::vector<AllocScopeStats> alloc_registry_snapshot() {
  ++t_exempt;
  std::vector<AllocScopeStats> out;
  {
    std::lock_guard<std::mutex> g(registry_mutex());  // LINT-ALLOW(raw-sync)
    for (const auto& kv : registry()) {
      AllocScopeStats s;
      s.label = kv.first;
      s.entries = kv.second.entries;
      s.allocs = kv.second.allocs;
      s.bytes = kv.second.bytes;
#if defined(__GLIBC__)
      for (int i = 0; i < kv.second.nbt; ++i) {
        char** syms = backtrace_symbols(
            const_cast<void* const*>(kv.second.bt[i]), kv.second.bt_len[i]);
        if (syms == nullptr) continue;
        for (int j = 0; j < kv.second.bt_len[i]; ++j) {
          s.frames.emplace_back(syms[j]);
        }
        std::free(syms);
      }
#endif
      out.push_back(std::move(s));
    }
  }
  --t_exempt;
  return out;
}

void alloc_registry_reset() {
  std::lock_guard<std::mutex> g(registry_mutex());  // LINT-ALLOW(raw-sync)
  registry().clear();
}

bool write_alloc_report(const std::string& path) {
  std::vector<AllocScopeStats> scopes = alloc_registry_snapshot();
  std::string body;
  body += "{\n  \"version\": 1,\n  \"kind\": \"runtime-alloc-report\",\n";
  body += "  \"total_allocs\": " + std::to_string(total_allocs()) + ",\n";
  body += "  \"scopes\": [";
  bool first = true;
  for (const AllocScopeStats& s : scopes) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    {\"label\": \"";
    escape_json(s.label, body);
    body += "\", \"entries\": " + std::to_string(s.entries);
    body += ", \"allocs\": " + std::to_string(s.allocs);
    body += ", \"bytes\": " + std::to_string(s.bytes);
    body += ", \"frames\": [";
    for (size_t i = 0; i < s.frames.size(); ++i) {
      if (i != 0) body += ", ";
      body += '"';
      escape_json(s.frames[i], body);
      body += '"';
    }
    body += "]}";
  }
  body += first ? "]\n}\n" : "\n  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return wrote == body.size();
}

void install_alloc_gate() { roc::hot::set_gate(&g_installer.gate); }

}  // namespace roc::check

// ---------------------------------------------------------------------------
// Global allocation-function replacements.  The full family, so nothing
// slips past the counters regardless of alignment or nothrow-ness.
// ---------------------------------------------------------------------------

void* operator new(std::size_t n) {
  return roc::check::do_alloc_throwing(n, 0);
}
void* operator new[](std::size_t n) {
  return roc::check::do_alloc_throwing(n, 0);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return roc::check::do_alloc(n, 0);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return roc::check::do_alloc(n, 0);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return roc::check::do_alloc_throwing(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return roc::check::do_alloc_throwing(n, static_cast<std::size_t>(al));
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return roc::check::do_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return roc::check::do_alloc(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { roc::check::do_free(p); }
void operator delete[](void* p) noexcept { roc::check::do_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  roc::check::do_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  roc::check::do_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  roc::check::do_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  roc::check::do_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  roc::check::do_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  roc::check::do_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  roc::check::do_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  roc::check::do_free(p);
}

#endif  // ROCPIO_CHECK
