#pragma once
/// \file alloc_hook.h
/// \brief Counting operator new/delete interposer (ROCPIO_CHECK only).
///
/// Linking this TU replaces the global allocation functions with counting
/// wrappers and installs the roc::hot::AllocGate, which activates the
/// ROC_ASSERT_NO_ALLOC / ROC_ALLOC_EXEMPT scopes compiled into product
/// code (src/util/hot.h).  Semantics:
///
///   * every operator-new allocation bumps per-thread and process
///     totals (raw interposer truth -- tests assert exact counts);
///   * allocations outside an ROC_ALLOC_EXEMPT bracket are CHARGED to
///     every ROC_ASSERT_NO_ALLOC scope open on the calling thread, with
///     the first few backtraces captured per scope;
///   * closed scopes merge into a process-wide registry keyed by label
///     (the rocanalyze symbol of the hot root), exported by
///     write_alloc_report() and compared against the static R8 report by
///     tools/check_alloc_subset.py;
///   * AllocMode::kAbort (or ROCPIO_ALLOC_MODE=abort in the environment)
///     turns the first charged allocation into an immediate abort with a
///     raw-fd backtrace -- the EXPECT_DEATH hook for tests.
///
/// The exempt bracket mirrors the static analyzer's sanctioned-channel
/// accounting (allocsum.py CHANNEL_FILES): BufferPool recycling is
/// counted in raw totals but never charged, keeping the static report a
/// superset of what the scopes observe.

#include <cstdint>
#include <string>
#include <vector>

namespace roc::check {

enum class AllocMode { kCount, kAbort };

/// Per-label accumulation of every closed ROC_ASSERT_NO_ALLOC scope.
struct AllocScopeStats {
  std::string label;
  uint64_t entries = 0;  // scope activations
  uint64_t allocs = 0;   // charged (unsanctioned) allocations
  uint64_t bytes = 0;
  std::vector<std::string> frames;  // symbolized frames of first allocs
};

#if defined(ROCPIO_CHECK)

/// Raw per-thread interposer counters (exempt allocations included).
uint64_t thread_allocs();
uint64_t thread_frees();
uint64_t thread_alloc_bytes();
/// Unsanctioned allocations on this thread: everything outside an
/// ROC_ALLOC_EXEMPT bracket, counted whether or not a scope is open.
/// Benches diff this around each operation for allocs/op.
uint64_t thread_charged_allocs();
/// Process-wide totals.
uint64_t total_allocs();
uint64_t total_frees();

AllocMode alloc_mode();
void set_alloc_mode(AllocMode m);

/// Gate entry points (normally reached via ROC_ASSERT_NO_ALLOC /
/// ROC_ALLOC_EXEMPT; exposed for tests).
void* alloc_scope_enter(const char* label);
void alloc_scope_exit(void* token);
void* alloc_exempt_enter();
void alloc_exempt_exit(void* token);

/// Registry of closed scopes, sorted by label.
std::vector<AllocScopeStats> alloc_registry_snapshot();
void alloc_registry_reset();
/// Writes the registry as runtime-alloc-report JSON.  False on I/O error.
bool write_alloc_report(const std::string& path);

/// Installs the roc::hot gate.  A static initializer in alloc_hook.cpp
/// already does this when the TU is linked; calling again is a no-op.
void install_alloc_gate();

#else  // !ROCPIO_CHECK

inline uint64_t thread_allocs() { return 0; }
inline uint64_t thread_frees() { return 0; }
inline uint64_t thread_alloc_bytes() { return 0; }
inline uint64_t thread_charged_allocs() { return 0; }
inline uint64_t total_allocs() { return 0; }
inline uint64_t total_frees() { return 0; }
inline AllocMode alloc_mode() { return AllocMode::kCount; }
inline void set_alloc_mode(AllocMode) {}
inline void* alloc_scope_enter(const char*) { return nullptr; }
inline void alloc_scope_exit(void*) {}
inline void* alloc_exempt_enter() { return nullptr; }
inline void alloc_exempt_exit(void*) {}
inline std::vector<AllocScopeStats> alloc_registry_snapshot() { return {}; }
inline void alloc_registry_reset() {}
inline bool write_alloc_report(const std::string&) { return false; }
inline void install_alloc_gate() {}

#endif  // ROCPIO_CHECK

}  // namespace roc::check
