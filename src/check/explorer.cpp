#include "check/explorer.h"

#include <cstdio>

namespace roc::check {

namespace {

/// splitmix64 finalizer: stateless hash for fn-event priorities, so bare
/// scheduler-context events (network delivery, timers) get stable
/// seed-dependent priorities without consuming rng_ state in an order that
/// depends on how ties happened to group.
uint64_t mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double unit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string fmt_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

}  // namespace

Explorer::Explorer(Options opts) : opts_(opts), rng_(opts.seed) {}

double Explorer::priority_locked(int sched_id) {
  auto [it, fresh] = prio_.try_emplace(sched_id, 0.0);
  if (fresh) it->second = rng_.next_double();
  return it->second;
}

void Explorer::record_locked(TraceEvent ev) {
  if (trace_.size() < opts_.max_trace) trace_.push_back(std::move(ev));
  ++step_;
}

size_t Explorer::pick(const std::vector<Candidate>& c) {
  std::lock_guard<std::mutex> g(mu_);  // LINT-ALLOW(raw-sync)
  size_t best = 0;
  double best_p = -1.0;
  for (size_t i = 0; i < c.size(); ++i) {
    // Process candidates carry a persistent priority (PCT); bare fn events
    // hash to a per-event priority so message deliveries shuffle too.
    const double p = c[i].is_fn ? unit(mix64(opts_.seed ^ c[i].seq))
                                : priority_locked(c[i].sched_id);
    if (p > best_p) {
      best_p = p;
      best = i;
    }
  }
  record_locked(TraceEvent{'p', c[best].time, c[best].seq, c[best].sched_id,
                           static_cast<int>(c.size()), ""});
  return best;
}

void Explorer::maybe_preempt(const char* kind, size_t locks_held) {
  sim::Simulation* sim = sim_;
  if (sim == nullptr || locks_held > 0) return;
  bool fire;
  {
    std::lock_guard<std::mutex> g(mu_);  // LINT-ALLOW(raw-sync)
    fire = rng_.next_double() < opts_.preempt_probability;
    if (fire) {
      const int sid = sim->current_sched_id();
      // The priority change that makes PCT explore: the preempted thread
      // re-rolls, so a different thread likely wins the next tie.
      prio_[sid] = rng_.next_double();
      record_locked(TraceEvent{'j', sim->now(), 0, sid, 0,
                               kind != nullptr ? kind : "?"});
    }
  }
  // try_preempt() parks this thread and hands control to the event loop;
  // doing that while holding mu_ would deadlock against pick().
  if (fire) sim->try_preempt();
}

std::string Explorer::trace_json() const {
  std::lock_guard<std::mutex> g(mu_);  // LINT-ALLOW(raw-sync)
  std::string out = "[";
  for (size_t i = 0; i < trace_.size(); ++i) {
    const TraceEvent& ev = trace_[i];
    if (i > 0) out += ",";
    out += "\n  {\"type\":\"";
    out += ev.type;
    out += "\",\"t\":" + fmt_time(ev.time);
    if (ev.type == 'p') {
      out += ",\"seq\":" + std::to_string(ev.seq) +
             ",\"sched_id\":" + std::to_string(ev.sched_id) +
             ",\"ties\":" + std::to_string(ev.candidates);
    } else {
      out += ",\"sched_id\":" + std::to_string(ev.sched_id) + ",\"kind\":\"" +
             ev.kind + "\"";
    }
    out += "}";
  }
  out += trace_.empty() ? "]" : "\n]";
  return out;
}

}  // namespace roc::check
