#pragma once
/// \file explorer.h
/// \brief Seed-driven schedule exploration (PCT-style) for sim-mode runs.
///
/// The simulator is deterministic except for one degree of freedom: the
/// order of events due at the same virtual time.  The Explorer owns that
/// freedom.  It plugs into Simulation as a Scheduler (picking among
/// time-tied events by per-process random priority) and into the checker's
/// preemption hooks (injecting zero-time preemptions at mutex acquires,
/// comm hops and vfs writes, then demoting the preempted thread's
/// priority — the PCT priority-change move).
///
/// Every decision is a pure function of the seed and the event stream, so
/// a failing seed replays bit-for-bit: same seed, same schedule, same
/// findings, same trace JSON.

#include <cstdint>
#include <map>
#include <mutex>  // LINT-ALLOW(raw-sync): part of the checker itself
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace roc::check {

class Explorer final : public sim::Scheduler {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Chance that any given preemption point fires (held-lock-free
    /// points only; see maybe_preempt()).
    double preempt_probability = 0.125;
    /// Trace ring stops growing past this many decisions (the schedule
    /// itself is unaffected).
    size_t max_trace = 20000;
  };

  explicit Explorer(Options opts);

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// The simulation whose threads this explorer may preempt (borrowed;
  /// set before run, clear after).
  void attach(sim::Simulation* sim) { sim_ = sim; }

  // --- sim::Scheduler ------------------------------------------------------
  size_t pick(const std::vector<Candidate>& c) override;

  /// Called by Session::preemption_point() with the caller's held-lock
  /// count.  Never preempts while locks are held: the simulator's gates
  /// provide mutual exclusion cooperatively, and a preemption inside a
  /// critical section would explore schedules a real machine cannot reach.
  void maybe_preempt(const char* kind, size_t locks_held);

  /// The decision trace as a compact JSON array.  Identical across replays
  /// of the same seed over the same scenario.
  [[nodiscard]] std::string trace_json() const;

  [[nodiscard]] uint64_t seed() const { return opts_.seed; }

 private:
  struct TraceEvent {
    char type;        ///< 'p' = pick, 'j' = preempt.
    double time;      ///< Virtual time.
    uint64_t seq;     ///< Chosen event seq ('p') or 0.
    int sched_id;     ///< Chosen/preempted process.
    int candidates;   ///< Tie-set size ('p') or 0.
    std::string kind; ///< Preemption-point kind ('j') or "".
  };

  double priority_locked(int sched_id);
  void record_locked(TraceEvent ev);

  const Options opts_;
  sim::Simulation* sim_ = nullptr;

  mutable std::mutex mu_;  // LINT-ALLOW(raw-sync): see file comment
  Rng rng_;
  std::map<int, double> prio_;  ///< sched_id -> current priority.
  std::vector<TraceEvent> trace_;
  uint64_t step_ = 0;
};

}  // namespace roc::check
