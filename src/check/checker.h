#pragma once
/// \file checker.h
/// \brief The concurrency-checker session: vector-clock race detection and
/// runtime lock-order analysis over the ROC_CHECKHOOK_ event stream.
///
/// A Session implements check::Hooks.  Install one (install()), run a
/// scenario, uninstall, then inspect findings().  The detector is
/// FastTrack-flavoured happens-before:
///
///   * per-thread vector clock C_t;
///   * per-sync-object clock L_m: acquire joins C_t <- C_t ⊔ L_m, release
///     stores L_m <- C_t and ticks C_t (CondVar/Gate waits are a release
///     at wait_begin and an acquire at wait_end);
///   * per-packet clock for message send->receive and thread
///     spawn/join edges (packet_send publishes, packet_recv joins);
///   * per-cell shadow state: the last write epoch plus all reads since;
///     a read races a write that the reader's clock does not cover, a
///     write races both uncovered writes and uncovered reads.
///
/// The lock-order graph adds an edge held->acquired at every acquisition
/// made while other locks are held; a cycle means two code paths disagree
/// about lock order, and the report names the acquisition stacks that
/// close the cycle.
///
/// Thread-safety: hooks may arrive from any thread; a session serializes
/// them behind one internal (uninstrumented) mutex.  Hooks never log and
/// never touch instrumented primitives, so they cannot re-enter.

#include <cstdint>
#include <map>
#include <mutex>  // LINT-ALLOW(raw-sync): the checker cannot instrument itself
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/vector_clock.h"
#include "util/check_hooks.h"

namespace roc::check {

class Explorer;

/// Where an event came from (file:line of the instrumented call site).
struct SourceSite {
  const char* file = "?";
  unsigned line = 0;
  [[nodiscard]] std::string str() const;
};

/// One confirmed problem.  `detail` is a human-readable multi-line report;
/// `key` is the deduplication identity (stable across replays).
struct Finding {
  enum class Kind { kRace, kLockCycle };
  Kind kind = Kind::kRace;
  std::string key;
  std::string summary;
  std::string detail;
};

/// One observed lock-order edge, keyed by runtime lock NAMES (not object
/// addresses): `from` was held while `to` was acquired, with the
/// acquisition stack that first created the edge.  Name-keyed edges
/// survive lock destruction and are comparable across seeds and with the
/// static graph rocanalyze emits (`--lock-graph-out`).
struct LockOrderEdge {
  std::string from;
  std::string to;
  std::vector<std::string> stack;
};

/// Serializes edges as the runtime-lock-order-graph JSON document (the
/// format `tools/check_lock_subset.py` consumes).
void write_lock_order_json(const std::vector<LockOrderEdge>& edges,
                           std::string* out);

class Session final : public Hooks {
 public:
  Session();
  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Makes this session the global hook sink / removes it.  A session may
  /// only be installed while no instrumented threads are running.
  void install();
  void uninstall();

  /// The schedule explorer consulted at preemption points (borrowed; may
  /// be null).
  void set_explorer(Explorer* e) { explorer_ = e; }

  [[nodiscard]] std::vector<Finding> findings() const;
  [[nodiscard]] bool has_findings() const;
  /// Deterministic plain-text report of every finding ("" when clean).
  [[nodiscard]] std::string report() const;

  /// Every lock-order edge observed this session, sorted by (from, to).
  /// Unlike the address-keyed cycle-detection graph, these accumulate for
  /// the session's whole lifetime: destroying a lock erases its addresses
  /// from the live graph but never un-observes an ordering.
  [[nodiscard]] std::vector<LockOrderEdge> lock_order_edges() const;
  /// Writes lock_order_edges() as JSON to `path`; false on I/O failure.
  bool dump_lock_order_json(const std::string& path) const;

  // --- Hooks ---------------------------------------------------------------
  void lock_acquire(const void* m, const char* name, const char* file,
                    unsigned line) override;
  void lock_release(const void* m) override;
  void lock_destroy(const void* m) override;
  void wait_begin(const void* m) override;
  void wait_end(const void* m, const char* name, const char* file,
                unsigned line) override;
  void packet_send(uint64_t token) override;
  void packet_recv(uint64_t token) override;
  void shared_access(const void* cell, const char* what, bool write,
                     const char* file, unsigned line) override;
  void preemption_point(const char* kind) override;

 private:
  struct HeldLock {
    const void* m = nullptr;
    std::string name;
    SourceSite site;
  };
  struct ThreadState {
    VectorClock vc;
    std::vector<HeldLock> held;
  };
  struct Access {
    Tid tid = -1;
    uint64_t clock = 0;
    SourceSite site;
  };
  struct Cell {
    std::string name;
    bool has_write = false;
    Access last_write;
    std::map<Tid, Access> reads;  ///< Reads since the last write.
  };
  /// One lock-order edge from->to with the acquisition stack that created
  /// it (everything held, then the new acquisition site last).
  struct Edge {
    std::vector<std::string> stack;
  };

  /// Dense per-session thread id of the calling thread (assigned on first
  /// event; requires mu_).
  Tid self_locked();
  ThreadState& state_of(Tid t);
  void do_acquire(Tid t, const void* m, const char* name, SourceSite site,
                  bool record_order);
  void do_release(Tid t, const void* m);
  void add_finding_locked(Finding::Kind kind, std::string key,
                          std::string summary, std::string detail);
  void report_race_locked(const Cell& cell, const Access& prev,
                          bool prev_write, Tid tid, SourceSite site,
                          bool write);
  void check_lock_order_locked(Tid t, const void* m, const char* name,
                               SourceSite site);

  const uint64_t id_;  ///< Session generation for thread-id caching.
  Explorer* explorer_ = nullptr;
  bool installed_ = false;

  mutable std::mutex mu_;  // LINT-ALLOW(raw-sync): see file comment
  Tid next_tid_ = 0;
  std::vector<ThreadState> threads_;
  std::map<const void*, VectorClock> sync_;
  std::map<uint64_t, VectorClock> packets_;
  std::map<const void*, Cell> cells_;
  std::map<const void*, std::map<const void*, Edge>> edges_;
  std::map<const void*, std::string> lock_names_;
  /// Name-keyed shadow of edges_: (held name, acquired name) -> first
  /// acquisition stack.  NOT pruned by lock_destroy (see
  /// lock_order_edges()).
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      named_edges_;
  std::set<std::string> seen_keys_;
  std::vector<Finding> findings_;
};

}  // namespace roc::check
