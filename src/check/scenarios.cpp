#include "check/scenarios.h"

#include <memory>
#include <numeric>

#include "mesh/generators.h"
#include "rochdf/rochdf.h"
#include "rocpanda/client.h"
#include "rocpanda/server.h"
#include "sim/platform.h"
#include "sim/sim_comm.h"
#include "sim/sim_env.h"
#include "sim/sim_fs.h"
#include "sim/simulation.h"
#include "util/check_hooks.h"
#include "util/error.h"

namespace roc::check {

namespace {

sim::Platform quiet_platform(int cpus) {
  sim::Platform p;  // generic defaults: no noise, no interference
  p.node.cpus = cpus;
  return p;
}

mesh::MeshBlock make_block(int id, int n) {
  auto b = mesh::MeshBlock::structured(id, {n, n, n});
  mesh::add_fluid_schema(b);
  auto& f = b.field("pressure");
  std::iota(f.data.begin(), f.data.end(), static_cast<double>(id * 1000));
  return b;
}

/// Builds the sim, runs `populate` to add processes, and drives the run
/// with the session installed.  Install/uninstall bracket the Simulation's
/// LIFETIME (not just run()) so lock_destroy events reach the session.
template <typename Populate>
ScenarioResult drive(Session& session, Explorer& explorer, int cpus,
                     sim::Platform platform, Populate populate) {
  ScenarioResult result;
  session.set_explorer(&explorer);
  session.install();
  {
    platform.node.cpus = cpus;
    sim::Simulation sim(platform);
    sim.set_scheduler(&explorer);
    explorer.attach(&sim);
    populate(sim);
    try {
      sim.run();
    } catch (const std::exception& e) {
      result.error = e.what();
    }
    explorer.attach(nullptr);
  }
  session.uninstall();
  session.set_explorer(nullptr);
  return result;
}

ScenarioResult run_trochdf(Session& session, Explorer& explorer) {
  return drive(
      session, explorer, /*cpus=*/2, quiet_platform(2),
      [](sim::Simulation& sim) {
        auto world = std::make_shared<sim::SimWorld>(sim, 2);
        auto fs = std::make_shared<sim::SimFileSystem>(sim);
        for (int r = 0; r < 2; ++r) {
          sim.add_process([world, fs](sim::ProcContext& ctx) {
            auto comm = world->attach();
            sim::SimEnv env(ctx.sim());
            roccom::Roccom com;
            auto& w = com.create_window("fluid");
            auto b = make_block(comm->rank(), 5);
            w.register_pane(b.id(), &b);

            rochdf::Options o;
            o.threaded = true;
            rochdf::Rochdf io(*comm, env, *fs, o);
            // Back-to-back snapshots: the second write must block on the
            // first snapshot's handoff, the exact protocol under test.
            io.write_attribute(com,
                               roccom::IoRequest{"fluid", "all", "s0", 0.0});
            io.write_attribute(com,
                               roccom::IoRequest{"fluid", "all", "s1", 1.0});
            ctx.compute(0.5);
            io.sync();
            const auto st = io.stats();
            require(st.blocks_written == 2, "trochdf: expected 2 blocks");
            require(st.files_written == 2, "trochdf: expected 2 files");
          });
        }
      });
}

ScenarioResult run_active_buffering_impl(Session& session, Explorer& explorer,
                                         bool async_io) {
  return drive(
      session, explorer, /*cpus=*/3, quiet_platform(3),
      [async_io](sim::Simulation& sim) {
        auto world = std::make_shared<sim::SimWorld>(sim, 3);
        auto fs = std::make_shared<sim::SimFileSystem>(sim);
        for (int r = 0; r < 3; ++r) {
          sim.add_process([world, fs, async_io](sim::ProcContext& ctx) {
            auto comm = world->attach();
            sim::SimEnv env(ctx.sim());
            const rocpanda::Layout layout(comm->size(), 1);
            auto local = comm->split(
                layout.is_server(comm->rank()) ? 1 : 0, comm->rank());
            if (layout.is_server(comm->rank())) {
              rocpanda::ServerOptions opts;
              // Small enough that snapshots overflow to disk mid-stream:
              // the active-buffering spill path.
              opts.buffer_capacity = 20000;
              // async_drain variant: the drain runs through the async vfs
              // decorator, which pins to its deterministic sync shim on
              // the sim substrate — the schedules must stay identical.
              opts.async_io = async_io;
              (void)rocpanda::run_server(*comm, *local, env, *fs, layout,
                                         opts);
              return;
            }
            rocpanda::RocpandaClient client(*comm, env, layout);
            roccom::Roccom com;
            auto& w = com.create_window("f");
            auto b = make_block(local->rank(), 6);
            w.register_pane(b.id(), &b);
            for (int snap = 0; snap < 2; ++snap)
              client.write_attribute(
                  com, roccom::IoRequest{
                           "f", "all", "ab" + std::to_string(snap), 0.0});
            client.sync();
            const auto back = client.fetch_blocks("ab1", {local->rank()});
            require(back.size() == 1 &&
                        back[0].state_checksum() == b.state_checksum(),
                    "active_buffering: fetched block mismatch");
            client.shutdown();
          });
        }
      });
}

ScenarioResult run_active_buffering(Session& session, Explorer& explorer) {
  return run_active_buffering_impl(session, explorer, /*async_io=*/false);
}

/// Same workload with the server's drain routed through the async vfs
/// backend: proves the decorator changes nothing the checker can observe.
ScenarioResult run_async_drain(Session& session, Explorer& explorer) {
  return run_active_buffering_impl(session, explorer, /*async_io=*/true);
}

ScenarioResult run_fig3a(Session& session, Explorer& explorer) {
  constexpr int kClients = 4, kServers = 2;
  return drive(
      session, explorer, /*cpus=*/3, quiet_platform(3),
      [](sim::Simulation& sim) {
        auto world =
            std::make_shared<sim::SimWorld>(sim, kClients + kServers);
        auto fs = std::make_shared<sim::SimFileSystem>(sim);
        for (int r = 0; r < kClients + kServers; ++r) {
          sim.add_process([world, fs](sim::ProcContext& ctx) {
            auto comm = world->attach();
            sim::SimEnv env(ctx.sim());
            const rocpanda::Layout layout(comm->size(), kServers);
            auto local = comm->split(
                layout.is_server(comm->rank()) ? 1 : 0, comm->rank());
            if (layout.is_server(comm->rank())) {
              (void)rocpanda::run_server(*comm, *local, env, *fs, layout,
                                         rocpanda::ServerOptions{});
              return;
            }
            rocpanda::RocpandaClient client(*comm, env, layout);
            roccom::Roccom com;
            auto& w = com.create_window("f");
            auto b = make_block(local->rank(), 5);
            w.register_pane(b.id(), &b);
            client.write_attribute(com,
                                   roccom::IoRequest{"f", "all", "t0", 0.0});
            ctx.compute(1.0);  // the Fig 3(a) overlap window
            client.write_attribute(com,
                                   roccom::IoRequest{"f", "all", "t1", 1.0});
            client.sync();
            const auto back = client.fetch_blocks("t1", {local->rank()});
            require(back.size() == 1 &&
                        back[0].state_checksum() == b.state_checksum(),
                    "fig3a: fetched block mismatch");
            client.shutdown();
          });
        }
      });
}

ScenarioResult run_racy(Session& session, Explorer& explorer) {
  // Instantaneous network: the delivery callback lands at the SAME virtual
  // time as the receiver's wake-up, so the schedule explorer decides which
  // runs first.  When the receiver wins the tie, it touches `flag` before
  // the message (the only happens-before carrier) has arrived: a race.
  sim::Platform p = quiet_platform(2);
  p.net.intra_latency = 0;
  p.net.inter_latency = 0;
  p.net.intra_bandwidth = 1e18;
  p.net.inter_bandwidth = 1e18;

  auto flag = std::make_shared<int>(0);
  return drive(
      session, explorer, /*cpus=*/2, p,
      [flag](sim::Simulation& sim) {
        auto world = std::make_shared<sim::SimWorld>(sim, 2);
        sim.add_process([world, flag](sim::ProcContext&) {
          auto comm = world->attach();
          ROC_CHECK_SHARED_WRITE(flag.get(), "racy.flag");
          *flag = 1;
          const int one = 1;
          comm->send(1, 7, &one, sizeof(one));
        });
        sim.add_process([world, flag](sim::ProcContext& ctx) {
          auto comm = world->attach();
          ctx.wait_until(0.0, false);  // re-enter the tie at t=0
          if (!comm->iprobe(0, 7, nullptr)) {
            // Nothing delivered yet: this write is not ordered against
            // the sender's.  The bug under test.
            ROC_CHECK_SHARED_WRITE(flag.get(), "racy.flag");
            *flag = 2;
          }
          (void)comm->recv(0, 7);  // drain; establishes HB for the write
          ROC_CHECK_SHARED_WRITE(flag.get(), "racy.flag");
          *flag = 3;
        });
      });
}

}  // namespace

std::vector<std::string> scenario_names() {
  return {"trochdf", "active_buffering", "async_drain", "fig3a", "racy"};
}

ScenarioResult run_scenario(const std::string& name, Session& session,
                            Explorer& explorer) {
  if (name == "trochdf") return run_trochdf(session, explorer);
  if (name == "active_buffering")
    return run_active_buffering(session, explorer);
  if (name == "async_drain") return run_async_drain(session, explorer);
  if (name == "fig3a") return run_fig3a(session, explorer);
  if (name == "racy") return run_racy(session, explorer);
  throw InvalidArgument("unknown checker scenario: " + name);
}

}  // namespace roc::check
