#pragma once
/// \file scenarios.h
/// \brief Checker scenarios: the repo's sim-mode workloads packaged for
/// seed sweeps.
///
/// Each scenario builds a fresh Simulation, wires the explorer in as its
/// tie-break scheduler, installs the session's hooks, and runs one of the
/// existing workloads end to end:
///
///   * "trochdf"          — 2 ranks, threaded Rochdf (background I/O
///                          thread), back-to-back snapshots + sync: the
///                          snapshot-handoff protocol.
///   * "active_buffering" — Rocpanda with a small server buffer, forcing
///                          the overflow/spill path under load.
///   * "async_drain"      — the same workload with the server's drain
///                          routed through the async vfs backend (pinned
///                          to its deterministic sync shim on the sim
///                          substrate — schedules must not change).
///   * "fig3a"            — 4 clients + 2 servers, write/compute/write,
///                          fetch-back verification, shutdown.
///   * "racy"             — deliberately racy regression fixture: a flag
///                          is written before a message is provably
///                          received.  Roughly half of all schedules
///                          order the read ahead of the delivery; the
///                          checker must flag those.
///
/// Scenarios validate their own results with require() (not timing
/// asserts — injected preemptions legitimately perturb virtual time).

#include <string>
#include <vector>

#include "check/checker.h"
#include "check/explorer.h"

namespace roc::check {

/// "" on clean completion, else the scenario's failure message (an
/// exception escaping the simulation — distinct from checker findings,
/// which land in the Session).
struct ScenarioResult {
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

[[nodiscard]] std::vector<std::string> scenario_names();

/// Runs `name` under `session` + `explorer`.  Throws on unknown name.
ScenarioResult run_scenario(const std::string& name, Session& session,
                            Explorer& explorer);

}  // namespace roc::check
