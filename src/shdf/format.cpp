#include "shdf/format.h"

namespace roc::shdf {

const char* type_name(DataType t) {
  switch (t) {
    case DataType::kInt8: return "int8";
    case DataType::kUInt8: return "uint8";
    case DataType::kInt32: return "int32";
    case DataType::kUInt32: return "uint32";
    case DataType::kInt64: return "int64";
    case DataType::kUInt64: return "uint64";
    case DataType::kFloat32: return "float32";
    case DataType::kFloat64: return "float64";
  }
  return "?";
}

void write_superblock(ByteWriter& w, const Superblock& sb) {
  const size_t start = w.size();
  w.put<uint64_t>(kMagic);
  w.put<uint32_t>(kVersion);
  w.put<uint32_t>(static_cast<uint32_t>(sb.directory_kind));
  w.put<uint64_t>(sb.directory_offset);
  w.put<uint64_t>(sb.directory_bytes);
  w.put<uint64_t>(sb.dataset_count);
  // Pad to the fixed size so the superblock can be rewritten in place.
  while (w.size() - start < kSuperblockBytes) w.put<uint8_t>(0);
}

Superblock read_superblock(ByteReader& r) {
  const size_t start = r.position();
  if (r.get<uint64_t>() != kMagic)
    throw FormatError("not an SHDF file (bad magic)");
  const auto version = r.get<uint32_t>();
  if (version != kVersion)
    throw FormatError("unsupported SHDF version " + std::to_string(version));
  Superblock sb;
  const auto kind = r.get<uint32_t>();
  if (kind > 1) throw FormatError("unknown directory kind");
  sb.directory_kind = static_cast<DirectoryKind>(kind);
  sb.directory_offset = r.get<uint64_t>();
  sb.directory_bytes = r.get<uint64_t>();
  sb.dataset_count = r.get<uint64_t>();
  r.skip(kSuperblockBytes - (r.position() - start));
  return sb;
}

void write_attr(ByteWriter& w, const Attribute& a) {
  w.put_string(a.name);
  w.put<uint8_t>(static_cast<uint8_t>(a.value.index()));
  std::visit(
      [&w](const auto& v) {
        using V = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<V, int64_t>) {
          w.put<int64_t>(v);
        } else if constexpr (std::is_same_v<V, double>) {
          w.put<double>(v);
        } else if constexpr (std::is_same_v<V, std::string>) {
          w.put_string(v);
        } else {
          w.put_vector(v);
        }
      },
      a.value);
}

Attribute read_attr(ByteReader& r) {
  Attribute a;
  a.name = r.get_string();
  switch (r.get<uint8_t>()) {
    case 0: a.value = r.get<int64_t>(); break;
    case 1: a.value = r.get<double>(); break;
    case 2: a.value = r.get_string(); break;
    case 3: a.value = r.get_vector<int64_t>(); break;
    case 4: a.value = r.get_vector<double>(); break;
    default: throw FormatError("unknown attribute kind");
  }
  return a;
}

void write_dataset_header(ByteWriter& w, const DatasetDef& def,
                          uint64_t data_bytes, uint64_t stored_bytes,
                          uint64_t checksum) {
  w.put_string(def.name);
  w.put<uint8_t>(static_cast<uint8_t>(def.type));
  w.put<uint8_t>(static_cast<uint8_t>(def.codec));
  w.put<uint32_t>(static_cast<uint32_t>(def.dims.size()));
  for (uint64_t d : def.dims) w.put<uint64_t>(d);
  w.put<uint32_t>(static_cast<uint32_t>(def.attributes.size()));
  for (const auto& a : def.attributes) write_attr(w, a);
  w.put<uint64_t>(data_bytes);
  w.put<uint64_t>(stored_bytes);
  w.put<uint64_t>(checksum);
}

DatasetInfo read_dataset_header(ByteReader& r) {
  DatasetInfo info;
  info.def.name = r.get_string();
  const auto type = r.get<uint8_t>();
  if (type > static_cast<uint8_t>(DataType::kFloat64))
    throw FormatError("unknown dataset element type");
  info.def.type = static_cast<DataType>(type);
  const auto codec = r.get<uint8_t>();
  if (codec > static_cast<uint8_t>(Codec::kZeroRle))
    throw FormatError("unknown dataset codec");
  info.def.codec = static_cast<Codec>(codec);
  const auto ndims = r.get<uint32_t>();
  // Guard allocations against corrupted counts: each dim takes 8 bytes.
  if (ndims > r.remaining() / sizeof(uint64_t))
    throw FormatError("dataset dimension count exceeds stream");
  info.def.dims.resize(ndims);
  for (auto& d : info.def.dims) d = r.get<uint64_t>();
  const auto nattr = r.get<uint32_t>();
  // Smallest possible attribute is ~6 bytes (empty name + kind + byte).
  if (nattr > r.remaining() / 6)
    throw FormatError("attribute count exceeds stream");
  info.def.attributes.reserve(nattr);
  for (uint32_t i = 0; i < nattr; ++i)
    info.def.attributes.push_back(read_attr(r));
  info.data_bytes = r.get<uint64_t>();
  info.stored_bytes = r.get<uint64_t>();
  info.checksum = r.get<uint64_t>();
  if (info.data_bytes != info.def.byte_count())
    throw FormatError("dataset '" + info.def.name +
                      "' payload size disagrees with its dimensions");
  return info;
}

void write_directory(ByteWriter& w, const std::vector<DirEntry>& entries) {
  w.put<uint64_t>(entries.size());
  for (const auto& e : entries) {
    w.put_string(e.name);
    w.put<uint64_t>(e.header_offset);
  }
}

std::vector<DirEntry> read_directory(ByteReader& r) {
  const auto n = r.get<uint64_t>();
  // A directory entry is at least 12 bytes (empty name + offset).
  if (n > r.remaining() / 12)
    throw FormatError("directory entry count exceeds stream");
  std::vector<DirEntry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    DirEntry e;
    e.name = r.get_string();
    e.header_offset = r.get<uint64_t>();
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace roc::shdf
