#pragma once
/// \file codec.h
/// \brief Dataset payload codecs (SHDF's analogue of HDF's I/O filters).
///
/// kZeroRle targets the dominant redundancy in simulation snapshots:
/// long zero runs (untouched fields, padded regions, sparse interface
/// loads).  Token stream:
///   0x00 <u32 n>            n zero bytes
///   0x01 <u32 n> <n bytes>  literal bytes
/// Runs shorter than 16 zero bytes are folded into literals, so
/// incompressible data grows by at most ~5 bytes per 4 GiB literal chunk.
/// The dataset checksum is always over the UNCOMPRESSED payload, so
/// corruption is detected after decoding.

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace roc::shdf {

enum class Codec : uint8_t {
  kNone = 0,
  kZeroRle = 1,
};

[[nodiscard]] const char* codec_name(Codec c);

/// Encodes `n` bytes with the codec (kNone returns a plain copy).
[[nodiscard]] std::vector<unsigned char> encode(Codec c, const void* data,
                                                size_t n);

/// Decodes into exactly `expected_bytes`; throws FormatError on malformed
/// streams or size mismatch.
[[nodiscard]] std::vector<unsigned char> decode(Codec c,
                                                const unsigned char* data,
                                                size_t n,
                                                uint64_t expected_bytes);

}  // namespace roc::shdf
