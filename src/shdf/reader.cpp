#include "shdf/reader.h"

#include <algorithm>
#include <cstring>

#include "util/crc64.h"

namespace roc::shdf {

Reader::Reader(vfs::FileSystem& fs, const std::string& path)
    : file_(fs.open(path, vfs::OpenMode::kRead)), path_(path) {
  // Superblock.
  std::vector<unsigned char> sb_bytes(kSuperblockBytes);
  file_->seek(0);
  file_->read(sb_bytes.data(), sb_bytes.size());
  ByteReader sr(sb_bytes.data(), sb_bytes.size());
  const Superblock sb = read_superblock(sr);
  kind_ = sb.directory_kind;

  // Directory.  Bounds-check against the physical file size before
  // allocating: a corrupted superblock must fail cleanly, not OOM.
  const uint64_t fsize = file_->size();
  if (sb.directory_offset > fsize ||
      sb.directory_bytes > fsize - sb.directory_offset)
    throw FormatError("directory extends past end of file in " + path_);
  std::vector<unsigned char> dir_bytes(
      static_cast<size_t>(sb.directory_bytes));
  file_->seek(sb.directory_offset);
  file_->read(dir_bytes.data(), dir_bytes.size());
  ByteReader dr(dir_bytes.data(), dir_bytes.size());
  const auto entries = read_directory(dr);
  if (entries.size() != sb.dataset_count)
    throw FormatError("directory entry count disagrees with superblock in " +
                      path_);

  // Dataset headers.  Typical headers are a few hundred bytes; probe small
  // and widen on demand so the read cost reflects real metadata sizes.
  infos_.reserve(entries.size());
  const uint64_t file_size = file_->size();
  for (const auto& e : entries) {
    if (e.header_offset >= file_size)
      throw FormatError("dataset header offset past end of " + path_);
    DatasetInfo info;
    bool parsed = false;
    for (uint64_t probe : {uint64_t{512}, uint64_t{64} * 1024,
                           file_size - e.header_offset}) {
      const uint64_t want =
          std::min<uint64_t>(file_size - e.header_offset, probe);
      std::vector<unsigned char> buf(static_cast<size_t>(want));
      file_->seek(e.header_offset);
      file_->read(buf.data(), buf.size());
      ByteReader hr(buf.data(), buf.size());
      try {
        info = read_dataset_header(hr);
      } catch (const FormatError&) {
        if (want == file_size - e.header_offset) throw;  // truly corrupt
        continue;  // header longer than the probe window: widen
      }
      info.data_offset = e.header_offset + hr.position();
      parsed = true;
      break;
    }
    require(parsed, "unreachable: header parse fell through");
    infos_.push_back(std::move(info));
  }
}

std::vector<std::string> Reader::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(infos_.size());
  for (const auto& i : infos_) names.push_back(i.def.name);
  return names;
}

std::vector<std::string> Reader::dataset_names_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> names;
  for (const auto& i : infos_)
    if (i.def.name.rfind(prefix, 0) == 0) names.push_back(i.def.name);
  return names;
}

size_t Reader::find(const std::string& name) const {
  if (kind_ == DirectoryKind::kIndexed) {
    // Directory order is name order for indexed files.
    auto it = std::lower_bound(
        infos_.begin(), infos_.end(), name,
        [](const DatasetInfo& i, const std::string& n) { return i.def.name < n; });
    if (it != infos_.end() && it->def.name == name)
      return static_cast<size_t>(it - infos_.begin());
    return SIZE_MAX;
  }
  for (size_t i = 0; i < infos_.size(); ++i)
    if (infos_[i].def.name == name) return i;
  return SIZE_MAX;
}

bool Reader::has_dataset(const std::string& name) const {
  return find(name) != SIZE_MAX;
}

const DatasetInfo& Reader::info(const std::string& name) const {
  const size_t i = find(name);
  if (i == SIZE_MAX)
    throw FormatError("no dataset '" + name + "' in " + path_);
  return infos_[i];
}

const DatasetInfo& Reader::info(size_t index) const {
  require(index < infos_.size(), "dataset index out of range");
  return infos_[index];
}

std::vector<unsigned char> Reader::read_raw(const std::string& name) const {
  const DatasetInfo& i = info(name);
  const uint64_t fsize = file_->size();
  if (i.data_offset > fsize || i.stored_bytes > fsize - i.data_offset)
    throw FormatError("dataset '" + name + "' extends past end of " + path_);
  std::vector<unsigned char> raw(static_cast<size_t>(i.stored_bytes));
  file_->seek(i.data_offset);
  file_->read(raw.data(), raw.size());
  auto data = decode(i.def.codec, raw.data(), raw.size(), i.data_bytes);
  if (crc64(data.data(), data.size()) != i.checksum)
    throw FormatError("checksum mismatch reading dataset '" + name +
                      "' from " + path_);
  return data;
}

std::optional<AttrValue> Reader::attribute(const std::string& dataset,
                                           const std::string& attr) const {
  const DatasetInfo& i = info(dataset);
  for (const auto& a : i.def.attributes)
    if (a.name == attr) return a.value;
  return std::nullopt;
}

}  // namespace roc::shdf
