#pragma once
/// \file types.h
/// \brief Element types and attribute values for the SHDF scientific format.
///
/// SHDF ("Simple Hierarchical Data Format") is this project's from-scratch
/// stand-in for HDF4/HDF5 (DESIGN.md §2): a binary-portable container that
/// couples n-dimensional typed array data with user metadata in one file.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "shdf/codec.h"
#include "util/error.h"

namespace roc::shdf {

/// Element type of a dataset.
enum class DataType : uint8_t {
  kInt8 = 0,
  kUInt8 = 1,
  kInt32 = 2,
  kUInt32 = 3,
  kInt64 = 4,
  kUInt64 = 5,
  kFloat32 = 6,
  kFloat64 = 7,
};

/// Size in bytes of one element of `t`.
[[nodiscard]] constexpr size_t type_size(DataType t) {
  switch (t) {
    case DataType::kInt8:
    case DataType::kUInt8: return 1;
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat32: return 4;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kFloat64: return 8;
  }
  return 0;
}

[[nodiscard]] const char* type_name(DataType t);

/// Maps C++ element types to DataType tags (for the typed read/write
/// helpers).
template <typename T>
struct TypeTag;
template <> struct TypeTag<int8_t> { static constexpr DataType value = DataType::kInt8; };
template <> struct TypeTag<uint8_t> { static constexpr DataType value = DataType::kUInt8; };
template <> struct TypeTag<int32_t> { static constexpr DataType value = DataType::kInt32; };
template <> struct TypeTag<uint32_t> { static constexpr DataType value = DataType::kUInt32; };
template <> struct TypeTag<int64_t> { static constexpr DataType value = DataType::kInt64; };
template <> struct TypeTag<uint64_t> { static constexpr DataType value = DataType::kUInt64; };
template <> struct TypeTag<float> { static constexpr DataType value = DataType::kFloat32; };
template <> struct TypeTag<double> { static constexpr DataType value = DataType::kFloat64; };

/// A user attribute attached to a dataset: scalar, string, or small array.
/// This is the "metadata coupled with real data" the paper requires.
using AttrValue = std::variant<int64_t, double, std::string,
                               std::vector<int64_t>, std::vector<double>>;

/// Named attribute.
struct Attribute {
  std::string name;
  AttrValue value;
};

/// Full description of one dataset (everything except the payload bytes).
struct DatasetDef {
  std::string name;            ///< Hierarchical name, e.g. "block_0007/pressure".
  DataType type = DataType::kFloat64;
  Codec codec = Codec::kNone;  ///< Payload filter applied on disk.
  std::vector<uint64_t> dims;  ///< Extent per dimension; empty means scalar.
  std::vector<Attribute> attributes;

  /// Total number of elements.
  [[nodiscard]] uint64_t element_count() const {
    uint64_t n = 1;
    for (uint64_t d : dims) n *= d;
    return n;
  }
  /// Total payload bytes.
  [[nodiscard]] uint64_t byte_count() const {
    return element_count() * type_size(type);
  }
};

/// What the reader reports about a stored dataset.
struct DatasetInfo {
  DatasetDef def;
  uint64_t data_offset = 0;   ///< Absolute file offset of the payload.
  uint64_t data_bytes = 0;    ///< Uncompressed payload size.
  uint64_t stored_bytes = 0;  ///< On-disk (post-codec) payload size.
  uint64_t checksum = 0;  ///< CRC-64 of the UNCOMPRESSED payload.
};

}  // namespace roc::shdf
