#include "shdf/writer.h"

#include <algorithm>

#include "util/crc64.h"
#include "util/log.h"

namespace roc::shdf {

// Construction/open is once per file: cold for the allocation analyzer.
ROC_COLD Writer::Writer(vfs::FileSystem& fs, const std::string& path,
                        DirectoryKind kind)
    : file_(fs.open(path, vfs::OpenMode::kTruncate)),
      path_(path),
      kind_(kind) {
  // Reserve the superblock slot; it is rewritten with real values later.
  ByteWriter w;
  Superblock sb;
  sb.directory_kind = kind_;
  write_superblock(w, sb);
  file_->write(w.data(), w.size());
}

Writer::Writer(std::unique_ptr<vfs::File> file, std::string path,
               DirectoryKind kind, std::vector<DirEntry> entries,
               uint64_t append_offset)
    : file_(std::move(file)),
      path_(std::move(path)),
      kind_(kind),
      entries_(std::move(entries)),
      append_offset_(append_offset) {
  for (const auto& e : entries_) names_.insert(e.name);
}

ROC_COLD Writer Writer::append(vfs::FileSystem& fs, const std::string& path) {
  auto file = fs.open(path, vfs::OpenMode::kReadWrite);

  std::vector<unsigned char> sb_bytes(kSuperblockBytes);
  file->seek(0);
  file->read(sb_bytes.data(), sb_bytes.size());
  ByteReader sr(sb_bytes.data(), sb_bytes.size());
  const Superblock sb = read_superblock(sr);

  const uint64_t fsize = file->size();
  if (sb.directory_offset > fsize ||
      sb.directory_bytes > fsize - sb.directory_offset)
    throw FormatError("directory extends past end of file in " + path);
  std::vector<unsigned char> dir_bytes(
      static_cast<size_t>(sb.directory_bytes));
  file->seek(sb.directory_offset);
  file->read(dir_bytes.data(), dir_bytes.size());
  ByteReader dr(dir_bytes.data(), dir_bytes.size());
  std::vector<DirEntry> entries = read_directory(dr);
  if (entries.size() != sb.dataset_count)
    throw FormatError("directory entry count disagrees with superblock in " +
                      path);
  // Keep entries in append (offset) order so the kLinear reader still scans
  // insertion order; persist re-sorts for kIndexed.
  std::sort(entries.begin(), entries.end(),
            [](const DirEntry& a, const DirEntry& b) {
              return a.header_offset < b.header_offset;
            });

  // New datasets overwrite the old directory region.
  return Writer(std::move(file), path, sb.directory_kind, std::move(entries),
                sb.directory_offset);
}

Writer::~Writer() {
  if (closed_) return;
  try {
    close();
  } catch (const std::exception& e) {
    ROC_ERROR << "shdf::Writer(" << path_ << ") close failed: " << e.what();
  }
}

void Writer::add_dataset(const DatasetDef& def, const void* data) {
  BufferChain chain;
  chain.append_borrowed(data, static_cast<size_t>(def.byte_count()));
  put_dataset(def, chain);
}

void Writer::put_dataset(const DatasetDef& def, const BufferChain& payload) {
  require(!closed_, "add_dataset after close on ", path_);
  require(!def.name.empty(), "dataset name must not be empty");
  const uint64_t bytes = def.byte_count();
  require(payload.total_bytes() == bytes,
          "payload byte count mismatch for dataset ", def.name);
  bool fresh_name;
  {
    // Retained-until-close directory metadata: one set node per dataset is
    // the format's bookkeeping cost, not per-byte hot-path traffic.
    ROC_ALLOC_EXEMPT();
    // ROCANALYZE-ALLOW(r8-hotpath-alloc): why: duplicate-name guard,
    // retained until close; one node per dataset.
    fresh_name = names_.insert(def.name).second;
  }
  require(fresh_name, "duplicate dataset name: ", def.name);

  // The codec runs over the payload; the checksum stays on the
  // uncompressed bytes so corruption is caught after decoding.
  Crc64 crc;
  for (const BufferChain::Segment& s : payload.segments())
    crc.update(s.view.data, s.view.size);
  const uint64_t checksum = crc.value();

  hdr_.clear();  // retained scratch: header bytes reuse prior capacity
  uint64_t stored_bytes = 0;
  file_->seek(append_offset_);
  if (def.codec == Codec::kNone) {
    // Zero-copy fast path: one vectored write of header + raw segments.
    write_dataset_header(hdr_, def, bytes, bytes, checksum);
    stored_bytes = bytes;
    segs_.clear();
    // ROCANALYZE-ALLOW(r8-hotpath-alloc): why: retained-capacity segment
    // scratch; steady state reuses the vector's storage.
    segs_.reserve(1 + payload.segment_count());
    // ROCANALYZE-ALLOW(r8-hotpath-alloc): why: reserved above.
    segs_.emplace_back(hdr_.data(), hdr_.size());
    for (const BufferChain::Segment& s : payload.segments())
      // ROCANALYZE-ALLOW(r8-hotpath-alloc): why: reserved above.
      segs_.push_back(s.view);
    file_->writev(segs_);
  } else {
    // Filters transform the payload, so flatten and encode first.
    // ROCANALYZE-ALLOW(r9-copy-discipline,r8-hotpath-alloc): why: codecs
    // need contiguous input; compression is the opt-in ablation path.
    const auto flat = payload.to_vector();
    const auto stored = encode(def.codec, flat.data(), flat.size());
    write_dataset_header(hdr_, def, bytes, stored.size(), checksum);
    stored_bytes = stored.size();
    file_->write(hdr_.data(), hdr_.size());
    if (!stored.empty()) file_->write(stored.data(), stored.size());
  }

  {
    // Retained-until-close directory metadata (entry name copy + table
    // growth), mirrored by the static ALLOW below.
    ROC_ALLOC_EXEMPT();
    // ROCANALYZE-ALLOW(r8-hotpath-alloc): why: one directory entry per
    // dataset, retained until close; the format's metadata cost.
    entries_.push_back(DirEntry{def.name, append_offset_});
  }
  append_offset_ += hdr_.size() + stored_bytes;

  // HDF4-like mode keeps the on-disk bookkeeping current after every
  // append, which is exactly why its cost grows with the dataset count.
  if (kind_ == DirectoryKind::kLinear) persist_directory_and_superblock();
}

// ROC_COLD: directory persistence is the cold bookkeeping edge — once per
// close in kIndexed mode; per-append only in the HDF4-like kLinear
// ablation, whose bookkeeping cost is the point being measured.
ROC_COLD void Writer::persist_directory_and_superblock() {
  std::vector<DirEntry> dir = entries_;
  if (kind_ == DirectoryKind::kIndexed) {
    std::sort(dir.begin(), dir.end(), [](const DirEntry& a, const DirEntry& b) {
      return a.name < b.name;
    });
  }
  ByteWriter w;
  write_directory(w, dir);

  Superblock sb;
  sb.directory_kind = kind_;
  sb.directory_offset = append_offset_;
  sb.directory_bytes = w.size();
  sb.dataset_count = entries_.size();

  file_->seek(append_offset_);
  file_->write(w.data(), w.size());

  ByteWriter sw;
  write_superblock(sw, sb);
  file_->seek(0);
  file_->write(sw.data(), sw.size());
}

void Writer::close() {
  if (closed_) return;
  if (!file_) {  // moved-from shell
    closed_ = true;
    return;
  }
  persist_directory_and_superblock();
  file_->flush();
  file_.reset();
  closed_ = true;
}

}  // namespace roc::shdf
