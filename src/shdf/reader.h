#pragma once
/// \file reader.h
/// \brief SHDF file reader.
///
/// The reader honours the file's directory engine: a kLinear file is looked
/// up by scanning the directory in insertion order (HDF4-like, O(n) per
/// lookup), a kIndexed file by binary search.  Payload integrity is verified
/// against the stored CRC-64 on every read.

#include <memory>
#include <optional>

#include "shdf/format.h"
#include "vfs/vfs.h"

namespace roc::shdf {

class Reader {
 public:
  /// Opens `path` and loads the directory + all dataset headers.
  Reader(vfs::FileSystem& fs, const std::string& path);

  [[nodiscard]] size_t dataset_count() const { return infos_.size(); }
  [[nodiscard]] DirectoryKind directory_kind() const { return kind_; }

  /// Dataset names in directory order.
  [[nodiscard]] std::vector<std::string> dataset_names() const;

  /// Names that start with `prefix` (SHDF's group convention), directory
  /// order.
  [[nodiscard]] std::vector<std::string> dataset_names_with_prefix(
      const std::string& prefix) const;

  [[nodiscard]] bool has_dataset(const std::string& name) const;

  /// Metadata of a dataset; throws FormatError if absent.
  [[nodiscard]] const DatasetInfo& info(const std::string& name) const;
  [[nodiscard]] const DatasetInfo& info(size_t index) const;

  /// Reads and checksum-verifies the raw payload.
  [[nodiscard]] std::vector<unsigned char> read_raw(
      const std::string& name) const;

  /// Typed read; throws FormatError if the stored element type mismatches T.
  template <typename T>
  [[nodiscard]] std::vector<T> read(const std::string& name) const {
    const DatasetInfo& i = info(name);
    if (i.def.type != TypeTag<T>::value)
      throw FormatError("dataset '" + name + "' has element type " +
                        std::string(type_name(i.def.type)) + ", not " +
                        std::string(type_name(TypeTag<T>::value)));
    auto raw = read_raw(name);
    std::vector<T> out(raw.size() / sizeof(T));
    // Zero-element datasets are legal; memcpy's arguments are declared
    // nonnull even for zero sizes.
    if (!out.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Attribute lookup on a dataset; nullopt if the attribute is absent.
  [[nodiscard]] std::optional<AttrValue> attribute(
      const std::string& dataset, const std::string& attr) const;

 private:
  /// Index of `name` in infos_, or SIZE_MAX.  Linear scan or binary search
  /// depending on the directory kind.
  [[nodiscard]] size_t find(const std::string& name) const;

  mutable std::unique_ptr<vfs::File> file_;
  std::string path_;
  DirectoryKind kind_ = DirectoryKind::kIndexed;
  std::vector<DatasetInfo> infos_;  ///< Directory order.
};

}  // namespace roc::shdf
