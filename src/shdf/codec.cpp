#include "shdf/codec.h"

#include <cstring>

#include "util/serialize.h"

namespace roc::shdf {

namespace {

constexpr size_t kMinZeroRun = 16;
constexpr uint8_t kTokZeros = 0x00;
constexpr uint8_t kTokLiteral = 0x01;

void put_literal(ByteWriter& w, const unsigned char* p, size_t n) {
  while (n > 0) {
    const size_t chunk = std::min<size_t>(n, UINT32_MAX);
    w.put<uint8_t>(kTokLiteral);
    w.put<uint32_t>(static_cast<uint32_t>(chunk));
    w.put_bytes(p, chunk);
    p += chunk;
    n -= chunk;
  }
}

}  // namespace

const char* codec_name(Codec c) {
  switch (c) {
    case Codec::kNone: return "none";
    case Codec::kZeroRle: return "zero-rle";
  }
  return "?";
}

// ROC_COLD: compression is the opt-in ablation; the zero-copy pipeline
// ships Codec::kNone and never materialises through here.
ROC_COLD std::vector<unsigned char> encode(Codec c, const void* data,
                                           size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  if (c == Codec::kNone) return {p, p + n};

  ByteWriter w;
  w.reserve(n / 4 + 16);
  size_t literal_start = 0;
  size_t i = 0;
  while (i < n) {
    if (p[i] != 0) {
      ++i;
      continue;
    }
    // Measure the zero run starting at i.
    size_t j = i;
    while (j < n && p[j] == 0) ++j;
    if (j - i >= kMinZeroRun) {
      if (i > literal_start)
        put_literal(w, p + literal_start, i - literal_start);
      size_t run = j - i;
      while (run > 0) {
        const size_t chunk = std::min<size_t>(run, UINT32_MAX);
        w.put<uint8_t>(kTokZeros);
        w.put<uint32_t>(static_cast<uint32_t>(chunk));
        run -= chunk;
      }
      literal_start = j;
    }
    i = j;
  }
  if (n > literal_start) put_literal(w, p + literal_start, n - literal_start);
  return w.take();
}

std::vector<unsigned char> decode(Codec c, const unsigned char* data,
                                  size_t n, uint64_t expected_bytes) {
  if (c == Codec::kNone) {
    if (n != expected_bytes)
      throw FormatError("uncompressed payload size mismatch");
    return {data, data + n};
  }

  std::vector<unsigned char> out;
  out.reserve(static_cast<size_t>(expected_bytes));
  ByteReader r(data, n);
  while (!r.at_end()) {
    const auto tok = r.get<uint8_t>();
    const auto count = r.get<uint32_t>();
    if (out.size() + count > expected_bytes)
      throw FormatError("codec stream produces more bytes than declared");
    if (tok == kTokZeros) {
      out.resize(out.size() + count, 0);
    } else if (tok == kTokLiteral) {
      const size_t at = out.size();
      out.resize(at + count);
      r.get_bytes(out.data() + at, count);
    } else {
      throw FormatError("unknown codec token");
    }
  }
  if (out.size() != expected_bytes)
    throw FormatError("codec stream produces fewer bytes than declared");
  return out;
}

}  // namespace roc::shdf
