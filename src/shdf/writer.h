#pragma once
/// \file writer.h
/// \brief SHDF file writer.
///
/// Datasets are appended one at a time; close() (or destruction) finalizes
/// the directory and superblock.  With DirectoryKind::kLinear the directory
/// is re-persisted after every append (HDF4-like in-file bookkeeping cost);
/// with kIndexed it is written once at close (HDF5-like).

#include <memory>
#include <span>
#include <unordered_set>

#include "shdf/format.h"
#include "vfs/vfs.h"

namespace roc::shdf {

class Writer {
 public:
  /// Creates (truncates) `path` on `fs`.  The FileSystem must outlive the
  /// Writer.
  Writer(vfs::FileSystem& fs, const std::string& path,
         DirectoryKind kind = DirectoryKind::kIndexed);

  /// Re-opens an existing SHDF file for appending further datasets.  The
  /// old directory region is overwritten by the first new dataset and a
  /// fresh directory is written at close.  The directory kind is taken from
  /// the file.
  static Writer append(vfs::FileSystem& fs, const std::string& path);

  /// Finalizes on destruction if close() was not called; destruction never
  /// throws (errors during implicit close are logged and swallowed).
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Appends one complete dataset.  `data` must contain def.byte_count()
  /// bytes.  Dataset names must be unique within a file.
  void add_dataset(const DatasetDef& def, const void* data);

  /// Gather append: the payload arrives as a chain of segments (which may
  /// alias wire bytes or caller arrays) and, for Codec::kNone, goes to disk
  /// as a single vectored write of header + segments — no intermediate
  /// materialisation.  Non-trivial codecs flatten first (they need
  /// contiguous input).  Segments only need to stay valid for this call.
  void put_dataset(const DatasetDef& def, const BufferChain& payload);

  /// Typed convenience: dims default to {v.size()} when def.dims is empty.
  template <typename T>
  void add(const std::string& name, const std::vector<T>& v,
           std::vector<Attribute> attrs = {},
           std::vector<uint64_t> dims = {}) {
    DatasetDef def;
    def.name = name;
    def.type = TypeTag<T>::value;
    def.dims = dims.empty() ? std::vector<uint64_t>{v.size()} : std::move(dims);
    def.attributes = std::move(attrs);
    require(def.element_count() == v.size(),
            "dims do not match element count for dataset " + name);
    add_dataset(def, v.data());
  }

  /// Number of datasets appended so far.
  [[nodiscard]] size_t dataset_count() const { return entries_.size(); }

  /// Writes the directory + final superblock and closes the file.
  void close();

  Writer(Writer&&) = default;
  Writer& operator=(Writer&&) = delete;

 private:
  /// Internal: adopts an already-open file positioned for appending
  /// (used by append()).
  Writer(std::unique_ptr<vfs::File> file, std::string path,
         DirectoryKind kind, std::vector<DirEntry> entries,
         uint64_t append_offset);

  void persist_directory_and_superblock();

  std::unique_ptr<vfs::File> file_;
  std::string path_;
  DirectoryKind kind_;
  std::vector<DirEntry> entries_;
  std::unordered_set<std::string> names_;  ///< Duplicate-name guard.
  uint64_t append_offset_ = kSuperblockBytes;
  bool closed_ = false;
  // Per-append scratch, retained across put_dataset calls so steady-state
  // appends reuse the header/segment storage instead of reallocating.
  ByteWriter hdr_;
  std::vector<ConstBuffer> segs_;
};

}  // namespace roc::shdf
