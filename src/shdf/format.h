#pragma once
/// \file format.h
/// \brief On-disk layout constants and record (de)serialization for SHDF.
///
/// File layout:
///
///   [ superblock : 48 bytes, fixed ]
///   [ dataset record 0 ] [ dataset record 1 ] ...
///   [ directory ]
///
/// A dataset record is [header bytes][payload bytes]; the header carries the
/// full DatasetDef, payload size and CRC-64.  The directory is a list of
/// (name, header offset) entries; its own offset/length live in the
/// superblock, which is rewritten when the directory moves.
///
/// Two directory engines model the HDF4-vs-HDF5 behaviour the paper leans
/// on (§3.2, §7.1):
///   * kLinear  — entries in insertion order; name lookup is a linear scan;
///     the writer re-persists the directory after EVERY dataset append (the
///     way HDF4 maintains its in-file DD list), so file-update cost grows
///     with the number of datasets already in the file.
///   * kIndexed — entries sorted by name; lookup is a binary search; the
///     directory is written once at close (HDF5-style).

#include "shdf/types.h"
#include "util/serialize.h"

namespace roc::shdf {

inline constexpr uint64_t kMagic = 0x0146'4448'5343'4F52ULL;  // "ROCSHDF\x01"
inline constexpr uint32_t kVersion = 2;
inline constexpr uint64_t kSuperblockBytes = 48;

enum class DirectoryKind : uint32_t {
  kLinear = 0,   ///< HDF4-like behaviour.
  kIndexed = 1,  ///< HDF5-like behaviour.
};

struct Superblock {
  DirectoryKind directory_kind = DirectoryKind::kIndexed;
  uint64_t directory_offset = 0;
  uint64_t directory_bytes = 0;
  uint64_t dataset_count = 0;
};

/// One directory entry: where a dataset record starts.
struct DirEntry {
  std::string name;
  uint64_t header_offset = 0;
};

/// Serializes a superblock to exactly kSuperblockBytes.
void write_superblock(ByteWriter& w, const Superblock& sb);
/// Parses a superblock; throws FormatError on bad magic/version.
Superblock read_superblock(ByteReader& r);

/// Serializes a dataset header (def + payload size + checksum).
void write_dataset_header(ByteWriter& w, const DatasetDef& def,
                          uint64_t data_bytes, uint64_t stored_bytes,
                          uint64_t checksum);
/// Parses a dataset header; `data_offset` is filled by the caller.
DatasetInfo read_dataset_header(ByteReader& r);

void write_directory(ByteWriter& w, const std::vector<DirEntry>& entries);
std::vector<DirEntry> read_directory(ByteReader& r);

void write_attr(ByteWriter& w, const Attribute& a);
Attribute read_attr(ByteReader& r);

}  // namespace roc::shdf
