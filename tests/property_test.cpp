/// \file property_test.cpp
/// \brief Property-style sweeps and failure injection across modules:
/// layout invariants over many shapes, deployment sweeps, buffer-capacity
/// sweeps, serialization fuzzing, file corruption, message storms, and
/// thread-vs-simulator equivalence.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "roccom/blockio.h"
#include "rocpanda/client.h"
#include "rocpanda/server.h"
#include "rocpanda/wire.h"
#include "shdf/reader.h"
#include "shdf/writer.h"
#include "sim/sim_comm.h"
#include "sim/sim_env.h"
#include "sim/sim_fs.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "vfs/vfs.h"

namespace roc {
namespace {

mesh::MeshBlock make_block(int id, int n = 4) {
  auto b = mesh::MeshBlock::structured(id, {n, n, n});
  mesh::add_fluid_schema(b);
  auto& p = b.field("pressure");
  std::iota(p.data.begin(), p.data.end(), static_cast<double>(id * 1000));
  return b;
}

// --- layout invariants over many shapes -------------------------------------

class LayoutProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LayoutProperty, PartitionIsConsistent) {
  const auto [world, nservers] = GetParam();
  const rocpanda::Layout l(world, nservers);

  int servers_seen = 0;
  std::set<int> client_indices;
  std::set<int> clients_via_servers;

  for (int r = 0; r < world; ++r) {
    if (l.is_server(r)) {
      ++servers_seen;
      const int idx = l.server_index(r);
      EXPECT_EQ(l.server_world_rank(idx), r);
      for (int c : l.clients_of_server(r)) {
        EXPECT_EQ(l.server_of_client(c), r)
            << "client " << c << " disagrees with server " << r;
        EXPECT_TRUE(clients_via_servers.insert(c).second)
            << "client " << c << " served twice";
      }
    } else {
      client_indices.insert(l.client_index(r));
    }
  }
  EXPECT_EQ(servers_seen, nservers);
  EXPECT_EQ(static_cast<int>(client_indices.size()), l.nclients());
  EXPECT_EQ(*client_indices.begin(), 0);
  EXPECT_EQ(*client_indices.rbegin(), l.nclients() - 1);
  EXPECT_EQ(clients_via_servers.size(),
            static_cast<size_t>(l.nclients()));
  // Every server has at least one client (no wasted processors).
  for (int s = 0; s < nservers; ++s)
    EXPECT_FALSE(l.clients_of_server(l.server_world_rank(s)).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutProperty,
    ::testing::Values(std::pair{2, 1}, std::pair{3, 1}, std::pair{9, 1},
                      std::pair{10, 3}, std::pair{16, 1}, std::pair{18, 2},
                      std::pair{36, 4}, std::pair{48, 3}, std::pair{72, 8},
                      std::pair{100, 7}, std::pair{512, 32},
                      std::pair{17, 5}));

// --- Rocpanda deployment sweep -----------------------------------------------

class DeploymentSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DeploymentSweep, WriteSyncFetchRoundTrip) {
  const auto [nclients, nservers] = GetParam();
  vfs::MemFileSystem fs;
  comm::World::run(nclients + nservers, [&](comm::Comm& world) {
    comm::RealEnv env;
    const rocpanda::Layout layout(world.size(), nservers);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)rocpanda::run_server(world, *local, env, fs, layout,
                                 rocpanda::ServerOptions{});
      return;
    }
    rocpanda::RocpandaClient client(world, env, layout);
    roccom::Roccom com;
    auto& w = com.create_window("f");
    // Irregular: client k owns k+1 blocks of varying size.
    std::vector<mesh::MeshBlock> blocks;
    int id = 0;
    for (int c = 0; c < local->rank(); ++c) id += c + 1;
    for (int i = 0; i <= local->rank(); ++i)
      blocks.push_back(make_block(id + i, 3 + (id + i) % 4));
    for (auto& b : blocks) w.register_pane(b.id(), &b);

    client.write_attribute(com, roccom::IoRequest{"f", "all", "dep", 0.0});
    client.sync();

    std::vector<int> mine;
    for (const auto& b : blocks) mine.push_back(b.id());
    const auto back = client.fetch_blocks("dep", mine);
    ASSERT_EQ(back.size(), blocks.size());
    for (size_t i = 0; i < back.size(); ++i)
      EXPECT_EQ(back[i].state_checksum(), blocks[i].state_checksum());
    client.shutdown();
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, DeploymentSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{3, 2}, std::pair{5, 2},
                                           std::pair{8, 1}, std::pair{8, 4},
                                           std::pair{9, 3}));

// --- server buffer capacity sweep ---------------------------------------------

class BufferCapacitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferCapacitySweep, NoDataLossAtAnyCapacity) {
  vfs::MemFileSystem fs;
  rocpanda::ServerOptions opts;
  opts.buffer_capacity = GetParam();
  comm::World::run(4, [&](comm::Comm& world) {
    comm::RealEnv env;
    const rocpanda::Layout layout(world.size(), 1);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)rocpanda::run_server(world, *local, env, fs, layout, opts);
      return;
    }
    rocpanda::RocpandaClient client(world, env, layout);
    roccom::Roccom com;
    auto& w = com.create_window("f");
    std::vector<mesh::MeshBlock> blocks;
    for (int i = 0; i < 3; ++i)
      blocks.push_back(make_block(local->rank() * 3 + i, 6));
    for (auto& b : blocks) w.register_pane(b.id(), &b);

    for (int snap = 0; snap < 2; ++snap)
      client.write_attribute(
          com, roccom::IoRequest{"f", "all", "cap" + std::to_string(snap),
                                 0.0});
    client.sync();
    const auto back =
        client.fetch_blocks("cap1", {local->rank() * 3, local->rank() * 3 + 2});
    EXPECT_EQ(back[0].state_checksum(), blocks[0].state_checksum());
    EXPECT_EQ(back[1].state_checksum(), blocks[2].state_checksum());
    client.shutdown();
  });
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferCapacitySweep,
                         ::testing::Values(uint64_t{1}, uint64_t{200},
                                           uint64_t{4096}, uint64_t{65536},
                                           UINT64_MAX));

// --- serialization fuzzing ------------------------------------------------------

TEST(Fuzz, TruncatedMeshBlockNeverCrashes) {
  auto b = make_block(7, 5);
  const auto bytes = b.serialize();
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const size_t cut = rng.next_below(bytes.size());
    try {
      (void)mesh::MeshBlock::deserialize(bytes.data(), cut);
      // Short prefixes can occasionally parse as an empty-ish block only
      // if all vector lengths happen to fit; tolerated as long as no UB.
    } catch (const Error&) {
      // expected
    }
  }
}

TEST(Fuzz, CorruptedMeshBlockNeverCrashes) {
  auto b = make_block(7, 5);
  auto bytes = b.serialize();
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    auto copy = bytes;
    // Flip a few random bytes.
    for (int k = 0; k < 4; ++k)
      copy[rng.next_below(copy.size())] ^=
          static_cast<unsigned char>(1 + rng.next_below(255));
    try {
      (void)mesh::MeshBlock::deserialize(copy.data(), copy.size());
    } catch (const Error&) {
      // expected
    }
  }
}

TEST(Fuzz, TruncatedWireBlockNeverCrashes) {
  auto b = make_block(3, 5);
  const auto bytes = rocpanda::WireBlock::from_block(b, "all").serialize();
  Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    const size_t cut = rng.next_below(bytes.size());
    try {
      (void)rocpanda::WireBlock::deserialize(
          std::vector<unsigned char>(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut)));
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, CorruptedShdfFileFailsStructured) {
  // Random single-byte corruption anywhere in the file must yield either a
  // clean read, a FormatError/IoError, or a checksum failure -- never a
  // crash or silent wrong payload for the corrupted dataset region.
  Rng rng(45);
  for (int trial = 0; trial < 60; ++trial) {
    vfs::MemFileSystem fs;
    {
      shdf::Writer w(fs, "f.shdf");
      w.add("a", std::vector<double>{1, 2, 3});
      w.add("b", std::vector<int32_t>{4, 5});
    }
    // Corrupt one byte.
    {
      auto f = fs.open("f.shdf", vfs::OpenMode::kReadWrite);
      const auto size = f->size();
      const uint64_t pos = rng.next_below(size);
      unsigned char byte;
      f->seek(pos);
      f->read(&byte, 1);
      byte ^= static_cast<unsigned char>(1 + rng.next_below(255));
      f->seek(pos);
      f->write(&byte, 1);
    }
    try {
      shdf::Reader r(fs, "f.shdf");
      for (const auto& name : r.dataset_names())
        (void)r.read_raw(name);
    } catch (const Error&) {
      // structured failure: fine
    }
  }
}

// --- zero-copy wire path equivalence -----------------------------------------
//
// The zero-copy pipeline (serialize_chain -> sendv -> WireBlockView
// pass-through write) must be byte-for-byte indistinguishable from the
// legacy copy path (from_block -> serialize -> deserialize -> write_to),
// across mesh kinds and including zero-length field payloads.

std::vector<mesh::MeshBlock> zero_copy_blocks() {
  std::vector<mesh::MeshBlock> blocks;
  blocks.push_back(make_block(7, 4));  // structured, several fields
  auto u = mesh::MeshBlock::unstructured(8, 5, {0, 1, 2, 3, 1, 2, 3, 4});
  std::iota(u.coords().begin(), u.coords().end(), 0.5);
  auto& uf = u.add_field("temp", mesh::Centering::kElement, 2);
  std::iota(uf.data.begin(), uf.data.end(), -3.0);
  blocks.push_back(std::move(u));
  auto z = make_block(9, 4);
  z.field("pressure").data.clear();  // zero-length field payload
  blocks.push_back(std::move(z));
  return blocks;
}

std::vector<unsigned char> file_bytes(vfs::FileSystem& fs,
                                      const std::string& path) {
  auto f = fs.open(path, vfs::OpenMode::kRead);
  std::vector<unsigned char> v(static_cast<size_t>(f->size()));
  f->read(v.data(), v.size());
  return v;
}

TEST(ZeroCopy, ChainSerializeMatchesLegacySerialize) {
  for (const auto& b : zero_copy_blocks()) {
    std::vector<std::string> attrs = {"all", "mesh"};
    for (const auto& f : b.fields()) attrs.push_back(f.name);
    for (const auto& attr : attrs) {
      const auto legacy =
          rocpanda::WireBlock::from_block(b, attr).serialize();
      const auto chain = rocpanda::WireBlock::serialize_chain(b, attr);
      EXPECT_EQ(chain.to_vector(), legacy)
          << "block " << b.id() << " attr " << attr;
      // And the materialising decoder must round-trip the chain's bytes.
      const auto wb = rocpanda::WireBlock::deserialize(chain.to_vector());
      EXPECT_EQ(wb.pane_id(), b.id());
      EXPECT_EQ(wb.serialize(), legacy)
          << "block " << b.id() << " attr " << attr;
    }
  }
}

TEST(ZeroCopy, PassThroughPipelineIsByteIdenticalToCopyPath) {
  const auto blocks = zero_copy_blocks();

  // Zero-copy pipeline: chain -> sendv -> parse -> pass-through write.
  vfs::MemFileSystem zc_fs;
  comm::World::run(2, [&](comm::Comm& comm) {
    if (comm.rank() == 0) {
      for (const auto& b : blocks)
        comm.sendv(1, 1, rocpanda::WireBlock::serialize_chain(b, "all"));
    } else {
      shdf::Writer w(zc_fs, "f.shdf");
      for (size_t i = 0; i < blocks.size(); ++i) {
        auto m = comm.recv(0, 1);
        rocpanda::WireBlockView::parse(m.payload).write_to(w, "win", 0.25);
      }
      w.close();
    }
  });

  // Legacy copy path: materialise a MeshBlock at every hop.
  vfs::MemFileSystem legacy_fs;
  {
    shdf::Writer w(legacy_fs, "f.shdf");
    for (const auto& b : blocks) {
      const auto wire = rocpanda::WireBlock::from_block(b, "all").serialize();
      rocpanda::WireBlock::deserialize(wire).write_to(w, "win", 0.25);
    }
    w.close();
  }

  // Direct write of the original blocks (the pre-wire reference).
  vfs::MemFileSystem direct_fs;
  {
    shdf::Writer w(direct_fs, "f.shdf");
    for (const auto& b : blocks)
      roccom::write_block(w, "win", b, "all", 0.25);
    w.close();
  }

  const auto zc = file_bytes(zc_fs, "f.shdf");
  EXPECT_EQ(zc, file_bytes(legacy_fs, "f.shdf"));
  EXPECT_EQ(zc, file_bytes(direct_fs, "f.shdf"));

  // And the result must read back as the original blocks.
  shdf::Reader r(zc_fs, "f.shdf");
  for (const auto& b : blocks) {
    const auto got = roccom::read_block(r, "win", b.id());
    EXPECT_EQ(got.kind(), b.kind());
    EXPECT_EQ(got.coords(), b.coords());
    EXPECT_EQ(got.fields().size(), b.fields().size());
    for (const auto& f : b.fields()) {
      const auto* g = got.find_field(f.name);
      ASSERT_NE(g, nullptr);
      EXPECT_EQ(g->data, f.data) << "block " << b.id() << " " << f.name;
    }
  }
}

// --- message storm ----------------------------------------------------------------

TEST(CommProperty, RandomMessageStormDeliversExactlyOnce) {
  constexpr int kRanks = 6;
  constexpr int kPerRank = 40;
  std::array<std::atomic<int>, kRanks> received{};
  comm::World::run(kRanks, [&](comm::Comm& comm) {
    Rng rng(1000 + static_cast<uint64_t>(comm.rank()));
    // Everyone sends kPerRank messages to random peers, then receives
    // exactly what it was sent.  A final allreduce of counts closes the
    // books.
    std::vector<int> sent_to(kRanks, 0);
    for (int i = 0; i < kPerRank; ++i) {
      const int dest = static_cast<int>(rng.next_below(kRanks));
      const uint64_t value = rng.next_u64();
      comm.send(dest, 17, &value, sizeof(value));
      ++sent_to[static_cast<size_t>(dest)];
    }
    // Tell each peer how many to expect from us.
    for (int r = 0; r < kRanks; ++r)
      comm.send(r, 18, &sent_to[static_cast<size_t>(r)], sizeof(int));
    int expect = 0;
    for (int r = 0; r < kRanks; ++r) {
      auto m = comm.recv(r, 18);
      int n;
      std::memcpy(&n, m.payload.data(), sizeof(n));
      expect += n;
    }
    for (int i = 0; i < expect; ++i) {
      auto m = comm.recv(comm::kAnySource, 17);
      EXPECT_EQ(m.payload.size(), sizeof(uint64_t));
      ++received[static_cast<size_t>(comm.rank())];
    }
    comm.barrier();
    // No stragglers.
    comm::Status st;
    EXPECT_FALSE(comm.iprobe(comm::kAnySource, 17, &st));
  });
  int total = 0;
  for (const auto& r : received) total += r.load();
  EXPECT_EQ(total, kRanks * kPerRank);
}

// --- thread-vs-simulator equivalence ------------------------------------------------

/// The same Rocpanda workload must produce byte-identical block state on
/// the thread-backed runtime and on the simulator (the simulator runs the
/// real code, so only timing may differ).
TEST(Substrates, ThreadAndSimProduceIdenticalFiles) {
  constexpr int kClients = 3, kServers = 1;

  auto workload = [](comm::Comm& world, comm::Env& env, vfs::FileSystem& fs)
      -> uint64_t {
    const rocpanda::Layout layout(world.size(), kServers);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)rocpanda::run_server(world, *local, env, fs, layout,
                                 rocpanda::ServerOptions{});
      return 0;
    }
    rocpanda::RocpandaClient client(world, env, layout);
    roccom::Roccom com;
    auto& w = com.create_window("f");
    auto b = make_block(local->rank(), 5);
    w.register_pane(b.id(), &b);
    client.write_attribute(com, roccom::IoRequest{"f", "all", "eq", 0.5});
    client.sync();
    const auto back = client.fetch_blocks("eq", {local->rank()});
    client.shutdown();
    return back[0].state_checksum();
  };

  // Thread substrate.
  std::vector<uint64_t> thread_sums(kClients + kServers, 0);
  vfs::MemFileSystem thread_fs;
  comm::World::run(kClients + kServers, [&](comm::Comm& world) {
    comm::RealEnv env;
    thread_sums[static_cast<size_t>(world.rank())] =
        workload(world, env, thread_fs);
  });

  // Simulator substrate.
  std::vector<uint64_t> sim_sums(kClients + kServers, 0);
  sim::Platform p;
  sim::Simulation sim(p);
  auto world = std::make_shared<sim::SimWorld>(sim, kClients + kServers);
  auto sim_fs = std::make_shared<sim::SimFileSystem>(sim);
  for (int r = 0; r < kClients + kServers; ++r) {
    sim.add_process([&, world, sim_fs](sim::ProcContext& ctx) {
      auto comm = world->attach();
      sim::SimEnv env(ctx.sim());
      sim_sums[static_cast<size_t>(comm->rank())] =
          workload(*comm, env, *sim_fs);
    });
  }
  sim.run();

  EXPECT_EQ(thread_sums, sim_sums);
  // File sets match too.
  EXPECT_EQ(thread_fs.list("eq").size(), sim_fs->list("eq").size());
}

}  // namespace
}  // namespace roc
