/// \file util_test.cpp
/// \brief Unit tests for serialization, CRC-64, RNG, logging and errors.

#include <gtest/gtest.h>

#include <limits>

#include "util/crc64.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace roc {
namespace {

TEST(Serialize, RoundTripScalars) {
  ByteWriter w;
  w.put<int32_t>(-42);
  w.put<uint64_t>(0xDEADBEEFCAFEBABEULL);
  w.put<double>(3.14159);
  w.put<float>(-2.5f);
  w.put<uint8_t>(255);
  w.put<int64_t>(std::numeric_limits<int64_t>::min());

  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.get<int32_t>(), -42);
  EXPECT_EQ(r.get<uint64_t>(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_FLOAT_EQ(r.get<float>(), -2.5f);
  EXPECT_EQ(r.get<uint8_t>(), 255);
  EXPECT_EQ(r.get<int64_t>(), std::numeric_limits<int64_t>::min());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, RoundTripStringsAndVectors) {
  ByteWriter w;
  w.put_string("hello world");
  w.put_string("");
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  w.put_vector(std::vector<int32_t>{});

  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_vector<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(r.get_vector<int32_t>().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, LittleEndianOnDisk) {
  // The encoding contract: 0x01020304 must serialize as 04 03 02 01.
  ByteWriter w;
  w.put<uint32_t>(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[1], 0x03);
  EXPECT_EQ(w.data()[2], 0x02);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, TruncationThrowsFormatError) {
  ByteWriter w;
  w.put<uint32_t>(7);
  ByteReader r(w.data(), w.size());
  (void)r.get<uint32_t>();
  EXPECT_THROW((void)r.get<uint8_t>(), FormatError);
}

TEST(Serialize, TruncatedStringThrows) {
  ByteWriter w;
  w.put<uint32_t>(100);  // claims 100 bytes follow; none do
  ByteReader r(w.data(), w.size());
  EXPECT_THROW((void)r.get_string(), FormatError);
}

TEST(Serialize, HugeVectorCountRejectedBeforeAllocation) {
  ByteWriter w;
  w.put<uint64_t>(std::numeric_limits<uint64_t>::max());  // absurd count
  ByteReader r(w.data(), w.size());
  EXPECT_THROW((void)r.get_vector<double>(), FormatError);
}

TEST(Serialize, SkipAndRemaining) {
  ByteWriter w;
  w.put<uint64_t>(1);
  w.put<uint64_t>(2);
  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.remaining(), 16u);
  r.skip(8);
  EXPECT_EQ(r.get<uint64_t>(), 2u);
  EXPECT_THROW(r.skip(1), FormatError);
}

TEST(Crc64, KnownProperties) {
  // Deterministic, order-sensitive, spread.
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_EQ(crc64(a, 5), crc64(a, 5));
  EXPECT_NE(crc64(a, 5), crc64(b, 5));
  EXPECT_NE(crc64(a, 5), crc64(a, 4));
  EXPECT_NE(crc64(a, 0), crc64(a, 1));
}

TEST(Crc64, StreamingMatchesOneShot) {
  std::vector<unsigned char> data(1000);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<unsigned char>(i * 31);
  Crc64 c;
  c.update(data.data(), 400);
  c.update(data.data() + 400, 600);
  EXPECT_EQ(c.value(), crc64(data.data(), data.size()));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(12345), b(12345), c(54321);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(12345);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t v = rng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(1);
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Error, HierarchyAndMessages) {
  try {
    throw IoError("disk on fire");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("disk on fire"), std::string::npos);
  }
  EXPECT_THROW(require(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  ROC_WARN << "suppressed (below kError)";
  set_log_level(saved);
}

}  // namespace
}  // namespace roc
