/// \file util_test.cpp
/// \brief Unit tests for serialization, CRC-64, RNG, logging and errors.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "util/buffer.h"
#include "util/crc64.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace roc {
namespace {

TEST(Serialize, RoundTripScalars) {
  ByteWriter w;
  w.put<int32_t>(-42);
  w.put<uint64_t>(0xDEADBEEFCAFEBABEULL);
  w.put<double>(3.14159);
  w.put<float>(-2.5f);
  w.put<uint8_t>(255);
  w.put<int64_t>(std::numeric_limits<int64_t>::min());

  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.get<int32_t>(), -42);
  EXPECT_EQ(r.get<uint64_t>(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_FLOAT_EQ(r.get<float>(), -2.5f);
  EXPECT_EQ(r.get<uint8_t>(), 255);
  EXPECT_EQ(r.get<int64_t>(), std::numeric_limits<int64_t>::min());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, RoundTripStringsAndVectors) {
  ByteWriter w;
  w.put_string("hello world");
  w.put_string("");
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  w.put_vector(std::vector<int32_t>{});

  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_vector<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(r.get_vector<int32_t>().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, LittleEndianOnDisk) {
  // The encoding contract: 0x01020304 must serialize as 04 03 02 01.
  ByteWriter w;
  w.put<uint32_t>(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[1], 0x03);
  EXPECT_EQ(w.data()[2], 0x02);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, TruncationThrowsFormatError) {
  ByteWriter w;
  w.put<uint32_t>(7);
  ByteReader r(w.data(), w.size());
  (void)r.get<uint32_t>();
  EXPECT_THROW((void)r.get<uint8_t>(), FormatError);
}

TEST(Serialize, TruncatedStringThrows) {
  ByteWriter w;
  w.put<uint32_t>(100);  // claims 100 bytes follow; none do
  ByteReader r(w.data(), w.size());
  EXPECT_THROW((void)r.get_string(), FormatError);
}

TEST(Serialize, HugeVectorCountRejectedBeforeAllocation) {
  ByteWriter w;
  w.put<uint64_t>(std::numeric_limits<uint64_t>::max());  // absurd count
  ByteReader r(w.data(), w.size());
  EXPECT_THROW((void)r.get_vector<double>(), FormatError);
}

TEST(Serialize, SkipAndRemaining) {
  ByteWriter w;
  w.put<uint64_t>(1);
  w.put<uint64_t>(2);
  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.remaining(), 16u);
  r.skip(8);
  EXPECT_EQ(r.get<uint64_t>(), 2u);
  EXPECT_THROW(r.skip(1), FormatError);
}

TEST(Crc64, KnownProperties) {
  // Deterministic, order-sensitive, spread.
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_EQ(crc64(a, 5), crc64(a, 5));
  EXPECT_NE(crc64(a, 5), crc64(b, 5));
  EXPECT_NE(crc64(a, 5), crc64(a, 4));
  EXPECT_NE(crc64(a, 0), crc64(a, 1));
}

TEST(Crc64, StreamingMatchesOneShot) {
  std::vector<unsigned char> data(1000);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<unsigned char>(i * 31);
  Crc64 c;
  c.update(data.data(), 400);
  c.update(data.data() + 400, 600);
  EXPECT_EQ(c.value(), crc64(data.data(), data.size()));
}

TEST(Crc64, SlicedMatchesBitwiseReference) {
  // Randomized equivalence: the slicing-by-8 implementation must agree
  // with the bit-at-a-time reference on arbitrary lengths and contents,
  // including lengths that exercise the unaligned head/tail paths.
  Rng rng(0xc5c64u);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.next_below(301));
    std::vector<unsigned char> data(n);
    for (auto& b : data)
      b = static_cast<unsigned char>(rng.next_below(256));

    Crc64 sliced;
    // Split the input at a random point to exercise streaming too.
    const size_t cut = static_cast<size_t>(rng.next_below(n + 1));
    sliced.update(data.data(), cut);
    sliced.update(data.data() + cut, n - cut);

    uint64_t ref = crc64_update_bitwise(~0ULL, data.data(), n);
    EXPECT_EQ(sliced.value(), ~ref) << "length " << n;
    EXPECT_EQ(crc64(data.data(), n), ~ref);
  }
}

TEST(Serialize, PutRawArrayMatchesElementwisePut) {
  const std::vector<double> values = {0.0, -1.5, 3.25e300, 1e-300};
  ByteWriter raw;
  raw.put_raw_array(values.data(), values.size());
  ByteWriter loop;
  for (double v : values) loop.put<double>(v);
  ASSERT_EQ(raw.size(), loop.size());
  EXPECT_EQ(0, std::memcmp(raw.data(), loop.data(), raw.size()));

  ByteReader r(raw.data(), raw.size());
  for (double v : values) EXPECT_EQ(r.get<double>(), v);
}

TEST(Buffer, SharedBufferSharesNotCopies) {
  const SharedBuffer empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.use_count(), 0);

  std::vector<unsigned char> bytes = {1, 2, 3, 4};
  const unsigned char* storage = bytes.data();
  SharedBuffer a = SharedBuffer::adopt(std::move(bytes));
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.data(), storage);  // adopt moves, never copies
  EXPECT_EQ(a.use_count(), 1);

  SharedBuffer b = a;  // handle copy: same bytes, refcount 2
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(a.use_count(), 2);

  SharedBuffer c = SharedBuffer::copy_of(a.data(), a.size());
  EXPECT_NE(c.data(), a.data());
  EXPECT_EQ(c.to_vector(), a.to_vector());
}

TEST(Buffer, ChainGathersOwnedAndBorrowedInOrder) {
  std::vector<unsigned char> borrowed = {10, 11, 12};
  BufferChain chain;
  chain.append(SharedBuffer::adopt({1, 2}));
  chain.append_borrowed(borrowed.data(), borrowed.size());
  chain.append_borrowed(nullptr, 0);  // empty segments are legal
  chain.append(SharedBuffer::adopt({20}));

  EXPECT_EQ(chain.total_bytes(), 6u);
  EXPECT_EQ(chain.segment_count(), 4u);
  EXPECT_TRUE(chain.segments()[1].borrowed());
  EXPECT_FALSE(chain.segments()[0].borrowed());

  const std::vector<unsigned char> expect = {1, 2, 10, 11, 12, 20};
  EXPECT_EQ(chain.to_vector(), expect);
  EXPECT_EQ(chain.gather().to_vector(), expect);

  chain.clear();
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.gather().size(), 0u);
}

TEST(Buffer, PoolRecyclesStorage) {
  BufferPool pool;
  auto v = pool.acquire(2000);
  EXPECT_EQ(v.size(), 2000u);
  const unsigned char* storage = v.data();
  {
    SharedBuffer sealed = pool.seal(std::move(v));
    EXPECT_EQ(sealed.data(), storage);
    EXPECT_EQ(pool.stats().misses, 1u);
    EXPECT_EQ(pool.stats().returns, 0u);
  }  // last reference dropped: storage goes back to the pool
  EXPECT_EQ(pool.stats().returns, 1u);

  auto w = pool.acquire(1500);  // same power-of-two bucket as 2000
  EXPECT_EQ(w.data(), storage);
  EXPECT_EQ(pool.stats().hits, 1u);
  (void)pool.seal(std::move(w));
}

TEST(Buffer, PoolSealedBufferSurvivesPoolDestruction) {
  SharedBuffer survivor;
  {
    BufferPool pool;
    auto v = pool.acquire(64);
    for (size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<unsigned char>(i);
    survivor = pool.seal(std::move(v));
  }  // pool gone; the buffer must keep its bytes (and free them itself)
  ASSERT_EQ(survivor.size(), 64u);
  EXPECT_EQ(survivor.data()[63], 63);
}

TEST(Buffer, PoolBoundsIdleStoragePerBucket) {
  BufferPool pool(/*max_per_bucket=*/1);
  auto a = pool.seal(pool.acquire(1000));
  auto b = pool.seal(pool.acquire(1000));
  a = SharedBuffer();  // recycled (bucket now full)
  b = SharedBuffer();  // discarded
  EXPECT_EQ(pool.stats().returns, 1u);
  EXPECT_EQ(pool.stats().discards, 1u);
}

TEST(Buffer, PoolGatherFlattensChain) {
  BufferPool pool;
  std::vector<unsigned char> payload(5000, 0xab);
  BufferChain chain;
  chain.append(SharedBuffer::adopt({1, 2, 3}));
  chain.append_borrowed(payload.data(), payload.size());
  SharedBuffer flat = pool.gather(chain);
  EXPECT_EQ(flat.size(), 5003u);
  EXPECT_EQ(flat.data()[0], 1);
  EXPECT_EQ(flat.data()[5002], 0xab);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(12345), b(12345), c(54321);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(12345);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t v = rng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(1);
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Error, HierarchyAndMessages) {
  try {
    throw IoError("disk on fire");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("disk on fire"), std::string::npos);
  }
  EXPECT_THROW(require(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  ROC_WARN << "suppressed (below kError)";
  set_log_level(saved);
}

}  // namespace
}  // namespace roc
