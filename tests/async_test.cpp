/// \file async_test.cpp
/// \brief Unit and property tests for the async vfs backend: aligned pool
/// buckets, the three ring engines, and the byte-identity guarantee of
/// `AsyncFile` against the synchronous POSIX path.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "util/buffer.h"
#include "util/mutex.h"
#include "util/thread.h"
#include "vfs/async.h"
#include "vfs/vfs.h"

namespace roc::vfs {
namespace {

// ---------------------------------------------------------------------------
// AlignedBuffer / aligned pool buckets
// ---------------------------------------------------------------------------

TEST(AlignedBuffer, AllocationIsAlignedAndRoundedUp) {
  AlignedBuffer b = AlignedBuffer::allocate(100);
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % kIoAlignment, 0u);
  EXPECT_EQ(b.capacity(), kIoAlignment);  // rounded up to one unit

  AlignedBuffer c = AlignedBuffer::allocate(kIoAlignment + 1);
  EXPECT_EQ(c.capacity(), 2 * kIoAlignment);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data()) % kIoAlignment, 0u);
}

TEST(AlignedBuffer, DefaultConstructedIsEmpty) {
  AlignedBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 0u);
}

TEST(BufferPoolAligned, SealKeepsBytesAndAlignment) {
  BufferPool pool;
  AlignedBuffer b = pool.acquire_aligned(5000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % kIoAlignment, 0u);
  EXPECT_GE(b.capacity(), 5000u);
  EXPECT_EQ(b.capacity() % kIoAlignment, 0u);
  for (size_t i = 0; i < 5000; ++i)
    b.data()[i] = static_cast<unsigned char>(i * 7);
  SharedBuffer s = pool.seal_aligned(std::move(b), 5000);
  ASSERT_EQ(s.size(), 5000u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(s.data()) % kIoAlignment, 0u);
  for (size_t i = 0; i < 5000; ++i)
    EXPECT_EQ(s.data()[i], static_cast<unsigned char>(i * 7));
}

TEST(BufferPoolAligned, RecyclesThroughTheFreeList) {
  BufferPool pool;
  { SharedBuffer s = pool.seal_aligned(pool.acquire_aligned(4096), 4096); }
  const BufferPool::Stats after_first = pool.stats();
  EXPECT_EQ(after_first.returns, 1u);
  // Same size class again: must be served from the free list.
  AlignedBuffer again = pool.acquire_aligned(4096);
  const BufferPool::Stats after_second = pool.stats();
  EXPECT_EQ(after_second.hits, after_first.hits + 1);
  EXPECT_FALSE(again.empty());
}

TEST(BufferPoolAligned, SealZeroBytesIsEmptyAndRecycles) {
  BufferPool pool;
  SharedBuffer s = pool.seal_aligned(pool.acquire_aligned(4096), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(pool.stats().returns, 1u);  // block went straight back
}

// ---------------------------------------------------------------------------
// Engine fixtures
// ---------------------------------------------------------------------------

/// Writes land in a mutex-guarded flat byte array — safe for concurrent
/// engine workers, and inspectable afterwards.
class FlatTarget final : public IoTarget {
 public:
  explicit FlatTarget(size_t capacity) : bytes_(capacity, 0) {}

  int64_t pwrite(const void* data, size_t n, uint64_t offset,
                 bool /*direct*/) noexcept override {
    MutexLock lock(mu_);
    if (offset + n > bytes_.size()) return -static_cast<int64_t>(EFBIG);
    std::memcpy(bytes_.data() + offset, data, n);
    if (offset + n > extent_) extent_ = offset + n;
    return static_cast<int64_t>(n);
  }

  void read_at(void* out, size_t n, uint64_t offset) override {
    MutexLock lock(mu_);
    std::memcpy(out, bytes_.data() + offset, n);
  }

  uint64_t size() override {
    MutexLock lock(mu_);
    return extent_;
  }
  void flush() override {}

  [[nodiscard]] std::vector<unsigned char> contents() {
    MutexLock lock(mu_);
    return {bytes_.begin(), bytes_.begin() + static_cast<long>(extent_)};
  }

 private:
  Mutex mu_{"flat_target"};
  std::vector<unsigned char> bytes_ ROC_GUARDED_BY(mu_);
  uint64_t extent_ ROC_GUARDED_BY(mu_) = 0;
};

/// pwrite blocks until the gate opens; records the peak number of
/// concurrent writers, which exposes the engine's real parallelism.
class GateTarget final : public IoTarget {
 public:
  int64_t pwrite(const void*, size_t n, uint64_t,
                 bool) noexcept override {
    MutexLock lock(mu_);
    ++active_;
    if (active_ > peak_) peak_ = active_;
    while (!open_) cv_.wait(mu_);
    --active_;
    return static_cast<int64_t>(n);
  }
  void read_at(void*, size_t, uint64_t) override {}
  uint64_t size() override { return 0; }
  void flush() override {}

  void open_gate() {
    MutexLock lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  [[nodiscard]] unsigned peak() {
    MutexLock lock(mu_);
    return peak_;
  }

 private:
  Mutex mu_{"gate_target"};
  CondVar cv_;
  bool open_ ROC_GUARDED_BY(mu_) = false;
  unsigned active_ ROC_GUARDED_BY(mu_) = 0;
  unsigned peak_ ROC_GUARDED_BY(mu_) = 0;
};

/// Every write fails with a fixed errno.
class FailingTarget final : public IoTarget {
 public:
  int64_t pwrite(const void*, size_t, uint64_t, bool) noexcept override {
    return -static_cast<int64_t>(ENOSPC);
  }
  void read_at(void*, size_t, uint64_t) override {}
  uint64_t size() override { return 0; }
  void flush() override {}
};

Sqe make_sqe(uint64_t id, IoTarget* t, const unsigned char* data, size_t n,
             uint64_t off) {
  Sqe s;
  s.id = id;
  s.target = t;
  s.offset = off;
  s.data = data;
  s.len = n;
  return s;
}

/// Drains the engine and reaps everything still pending.
std::vector<Cqe> settle(AsyncEngine& e) {
  e.drain();
  std::vector<Cqe> out;
  e.reap(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------------

TEST(SyncEngine, ExecutesInlineAndReapsEveryCompletion) {
  telemetry::MetricsRegistry reg;
  auto e = make_sync_engine(AsyncMetrics(reg));
  FlatTarget target(1024);
  const unsigned char payload[] = "hello rings";
  e->submit(make_sqe(1, &target, payload, 5, 0));
  e->submit(make_sqe(2, &target, payload + 6, 5, 5));
  // Inline execution: the bytes are on the target before any drain.
  EXPECT_EQ(target.size(), 10u);
  const auto cq = settle(*e);
  ASSERT_EQ(cq.size(), 2u);
  EXPECT_EQ(cq[0].result, 5);
  EXPECT_EQ(cq[1].result, 5);
  EXPECT_EQ(reg.counter("vfs.async.submissions").value(), 2u);
  EXPECT_EQ(reg.counter("vfs.async.completions").value(), 2u);
}

TEST(ThreadPoolEngine, WritesEverythingAndCompletionsMatch) {
  telemetry::MetricsRegistry reg;
  auto e = make_thread_pool_engine(8, 2, AsyncMetrics(reg));
  FlatTarget target(1 << 16);
  std::vector<std::vector<unsigned char>> payloads;
  for (int i = 0; i < 40; ++i)
    payloads.emplace_back(100, static_cast<unsigned char>(i + 1));
  for (int i = 0; i < 40; ++i)
    e->submit(make_sqe(static_cast<uint64_t>(i + 1), &target,
                       payloads[static_cast<size_t>(i)].data(), 100,
                       static_cast<uint64_t>(i) * 100));
  const auto cq = settle(*e);
  ASSERT_EQ(cq.size(), 40u);
  for (const Cqe& c : cq) EXPECT_EQ(c.result, 100);
  const auto bytes = target.contents();
  ASSERT_EQ(bytes.size(), 4000u);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(bytes[static_cast<size_t>(i) * 100],
              static_cast<unsigned char>(i + 1));
  EXPECT_EQ(reg.counter("vfs.async.completions").value(), 40u);
  EXPECT_EQ(reg.counter("vfs.async.bytes_submitted").value(), 4000u);
}

TEST(ThreadPoolEngine, BackpressureBoundsInflightAtQueueDepth) {
  telemetry::MetricsRegistry reg;
  constexpr unsigned kDepth = 2;
  auto e = make_thread_pool_engine(kDepth, 4, AsyncMetrics(reg));
  GateTarget gate;
  static const unsigned char byte = 0;
  // The producer must block on the ring bound: the gate never opens until
  // the stall is observed, so the 3rd submit cannot proceed.
  roc::Thread producer([&] {
    for (uint64_t id = 1; id <= 6; ++id)
      e->submit(make_sqe(id, &gate, &byte, 1, 0));
  });
  while (reg.counter("vfs.async.stall_waits").value() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_LE(reg.gauge("vfs.async.queue_depth_peak").value(),
            static_cast<int64_t>(kDepth));
  gate.open_gate();
  producer.join();
  const auto cq = settle(*e);
  EXPECT_EQ(cq.size(), 6u);
  EXPECT_LE(gate.peak(), kDepth);
  EXPECT_GE(reg.counter("vfs.async.stall_waits").value(), 1u);
}

TEST(ThreadPoolEngine, ErrorResultsSurfaceInCompletions) {
  telemetry::MetricsRegistry reg;
  auto e = make_thread_pool_engine(4, 1, AsyncMetrics(reg));
  FailingTarget target;
  static const unsigned char byte = 0;
  e->submit(make_sqe(7, &target, &byte, 1, 0));
  const auto cq = settle(*e);
  ASSERT_EQ(cq.size(), 1u);
  EXPECT_EQ(cq[0].id, 7u);
  EXPECT_EQ(cq[0].result, -static_cast<int64_t>(ENOSPC));
}

/// Raw-fd target for exercising the kernel ring directly.
class RawFdTarget final : public IoTarget {
 public:
  explicit RawFdTarget(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  }
  ~RawFdTarget() override {
    if (fd_ >= 0) ::close(fd_);
  }
  RawFdTarget(const RawFdTarget&) = delete;
  RawFdTarget& operator=(const RawFdTarget&) = delete;

  int64_t pwrite(const void* data, size_t n, uint64_t offset,
                 bool /*direct*/) noexcept override {
    const auto* p = static_cast<const unsigned char*>(data);
    size_t left = n;
    while (left > 0) {
      const ssize_t w = ::pwrite(  // LINT-ALLOW(raw-io): IoTarget impl.
          fd_, p, left, static_cast<off_t>(offset + (n - left)));
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return -static_cast<int64_t>(errno ? errno : EIO);
      p += w;
      left -= static_cast<size_t>(w);
    }
    return static_cast<int64_t>(n);
  }
  void read_at(void* out, size_t n, uint64_t offset) override {
    ASSERT_EQ(::pread(fd_, out, n, static_cast<off_t>(offset)),
              static_cast<ssize_t>(n));
  }
  uint64_t size() override { return 0; }
  void flush() override {}
  [[nodiscard]] int ring_fd(bool) const override { return fd_; }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

TEST(UringEngine, WritesThroughTheKernelRing) {
  if (!uring_available()) GTEST_SKIP() << "io_uring unavailable";
  telemetry::MetricsRegistry reg;
  auto e = make_uring_engine(4, AsyncMetrics(reg));
  ASSERT_NE(e, nullptr);
  EXPECT_STREQ(e->name(), "uring");
  const auto path = std::filesystem::temp_directory_path() /
                    ("rocpio_uring_test_" + std::to_string(::getpid()));
  RawFdTarget target(path.string());
  ASSERT_TRUE(target.ok());
  std::vector<std::vector<unsigned char>> payloads;
  for (int i = 0; i < 16; ++i)
    payloads.emplace_back(512, static_cast<unsigned char>(i + 1));
  for (int i = 0; i < 16; ++i)
    e->submit(make_sqe(static_cast<uint64_t>(i + 1), &target,
                       payloads[static_cast<size_t>(i)].data(), 512,
                       static_cast<uint64_t>(i) * 512));
  const auto cq = settle(*e);
  ASSERT_EQ(cq.size(), 16u);
  for (const Cqe& c : cq) EXPECT_EQ(c.result, 512);
  std::vector<unsigned char> back(512);
  for (int i = 0; i < 16; ++i) {
    target.read_at(back.data(), back.size(), static_cast<uint64_t>(i) * 512);
    EXPECT_EQ(back[0], static_cast<unsigned char>(i + 1));
    EXPECT_EQ(back[511], static_cast<unsigned char>(i + 1));
  }
  e.reset();
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Byte-identity property test
// ---------------------------------------------------------------------------

/// Replays a deterministic mixed op sequence — appends, vectored appends,
/// seek-back overwrites, flushes — with segment sizes drawn to straddle
/// sector boundaries (plenty of non-4096-multiple tails).
void run_ops(File& f, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> len_dist(1, 9000);
  uint64_t end = 0;
  auto fill = [&rng](std::vector<unsigned char>& v) {
    for (auto& b : v) b = static_cast<unsigned char>(rng());
  };
  for (int op = 0; op < 300; ++op) {
    const unsigned kind = rng() % 10;
    if (kind < 6 || end < 128) {  // plain append
      size_t n = len_dist(rng);
      if (op % 17 == 0) n = kIoAlignment * (1 + rng() % 3);  // aligned runs
      std::vector<unsigned char> data(n);
      fill(data);
      f.seek(end);
      f.write(data.data(), data.size());
      end += n;
    } else if (kind < 8) {  // vectored append, 2-4 segments
      const size_t nseg = 2 + rng() % 3;
      std::vector<std::vector<unsigned char>> segs(nseg);
      std::vector<ConstBuffer> views;
      size_t total = 0;
      for (auto& s : segs) {
        s.resize(1 + rng() % 3000);
        fill(s);
        views.emplace_back(s.data(), s.size());
        total += s.size();
      }
      f.seek(end);
      f.writev(views);
      end += total;
    } else if (kind == 8) {  // seek-back overwrite of settled/staged bytes
      const uint64_t pos = rng() % (end - 64);
      std::vector<unsigned char> data(1 + rng() % 64);
      fill(data);
      f.seek(pos);
      f.write(data.data(), data.size());
    } else {  // flush barrier mid-stream
      f.flush();
    }
  }
  f.flush();
  ASSERT_EQ(f.size(), end);
}

std::vector<unsigned char> read_all(FileSystem& fs, const std::string& path) {
  auto f = fs.open(path, OpenMode::kRead);
  std::vector<unsigned char> bytes(f->size());
  f->read(bytes.data(), bytes.size());
  return bytes;
}

class ByteIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("rocpio_async_ident_" + std::to_string(::getpid()));
    fs_ = std::make_unique<PosixFileSystem>(root_.string());
  }
  void TearDown() override {
    fs_.reset();
    std::filesystem::remove_all(root_);
  }

  /// Writes the reference file synchronously and the candidate through an
  /// AsyncFileSystem with `opts`; the two must match bit for bit.
  void expect_identical(const char* name, AsyncOptions opts,
                        uint32_t seed = 20260808) {
    {
      auto ref = fs_->open("ref.bin", OpenMode::kTruncate);
      run_ops(*ref, seed);
    }
    AsyncFileSystem async_fs(*fs_, opts);
    {
      // Name assembled piecewise (GCC 12 PR105651 -Wrestrict at -O3).
      std::string cand = "cand_";
      cand += name;
      cand += ".bin";
      auto f = async_fs.open(cand, OpenMode::kTruncate);
      run_ops(*f, seed);
      f.reset();  // close settles the ring
      EXPECT_EQ(read_all(*fs_, cand), read_all(*fs_, "ref.bin"))
          << "config " << name << " diverged from the sync path";
    }
  }

  std::unique_ptr<PosixFileSystem> fs_;
  std::filesystem::path root_;
};

TEST_F(ByteIdentityTest, SyncShim) {
  AsyncOptions o;
  o.backend = AsyncBackend::kSync;
  expect_identical("sync", o);
}

TEST_F(ByteIdentityTest, ThreadPool) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  expect_identical("threads", o);
}

TEST_F(ByteIdentityTest, ThreadPoolSmallStagingBlocks) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  o.coalesce_bytes = 8192;  // many block submissions, offsets mostly unaligned
  o.queue_depth = 4;
  expect_identical("threads_small", o);
}

TEST_F(ByteIdentityTest, ThreadPoolUncoalesced) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  o.coalesce_bytes = 0;
  expect_identical("threads_uncoalesced", o);
}

TEST_F(ByteIdentityTest, ThreadPoolDirect) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  o.direct_io = true;
  expect_identical("threads_direct", o);
}

TEST_F(ByteIdentityTest, Uring) {
  if (!uring_available()) GTEST_SKIP() << "io_uring unavailable";
  AsyncOptions o;
  o.backend = AsyncBackend::kUring;
  expect_identical("uring", o);
}

TEST_F(ByteIdentityTest, UringDirect) {
  if (!uring_available()) GTEST_SKIP() << "io_uring unavailable";
  AsyncOptions o;
  o.backend = AsyncBackend::kUring;
  o.direct_io = true;
  o.queue_depth = 32;
  expect_identical("uring_direct", o);
}

TEST(ByteIdentityMem, ShimOverMemFileSystemMatchesBase) {
  MemFileSystem mem;
  {
    auto ref = mem.open("ref.bin", OpenMode::kTruncate);
    run_ops(*ref, 42);
  }
  AsyncFileSystem async_fs(mem, AsyncOptions{});
  EXPECT_EQ(async_fs.resolved_backend(), AsyncBackend::kSync);
  {
    auto f = async_fs.open("cand.bin", OpenMode::kTruncate);
    run_ops(*f, 42);
  }
  EXPECT_EQ(read_all(mem, "cand.bin"), read_all(mem, "ref.bin"));
}

// ---------------------------------------------------------------------------
// AsyncFileSystem behaviour
// ---------------------------------------------------------------------------

class AsyncFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("rocpio_async_fs_" + std::to_string(::getpid()));
    fs_ = std::make_unique<PosixFileSystem>(root_.string());
  }
  void TearDown() override {
    fs_.reset();
    std::filesystem::remove_all(root_);
  }

  std::unique_ptr<PosixFileSystem> fs_;
  std::filesystem::path root_;
};

TEST_F(AsyncFsTest, CoalescingMergesSmallAppendsIntoFewSubmissions) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  AsyncFileSystem async_fs(*fs_, o);
  {
    auto f = async_fs.open("many.bin", OpenMode::kTruncate);
    std::vector<unsigned char> chunk(1000, 0xAB);
    for (int i = 0; i < 200; ++i) f->write(chunk.data(), chunk.size());
  }
  const auto s = async_fs.stats();
  EXPECT_EQ(s.completions, s.submissions);
  // 200 KB at 256 KiB staging: one block, one submission.
  EXPECT_LE(s.submissions, 2u);
  EXPECT_EQ(s.coalesced_writes, 199u);
  EXPECT_EQ(s.bytes_submitted, 200000u);
}

TEST_F(AsyncFsTest, UncoalescedModeSubmitsPerCall) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  o.coalesce_bytes = 0;
  AsyncFileSystem async_fs(*fs_, o);
  {
    auto f = async_fs.open("percall.bin", OpenMode::kTruncate);
    std::vector<unsigned char> chunk(1000, 0xCD);
    for (int i = 0; i < 50; ++i) f->write(chunk.data(), chunk.size());
  }
  const auto s = async_fs.stats();
  EXPECT_EQ(s.submissions, 50u);
  EXPECT_EQ(s.coalesced_writes, 0u);
}

TEST_F(AsyncFsTest, DirectSubmissionsForAlignedBulk) {
  // Probe the filesystem first: O_DIRECT support varies (tmpfs refuses it).
  const std::string probe_path = (root_ / "probe.bin").string();
  const int probe =
      ::open(probe_path.c_str(), O_WRONLY | O_CREAT | O_DIRECT, 0644);
  if (probe < 0) GTEST_SKIP() << "filesystem does not support O_DIRECT";
  ::close(probe);

  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  o.direct_io = true;
  o.coalesce_bytes = 64 * 1024;
  AsyncFileSystem async_fs(*fs_, o);
  {
    auto f = async_fs.open("direct.bin", OpenMode::kTruncate);
    std::vector<unsigned char> chunk(64 * 1024, 0xEF);
    for (int i = 0; i < 4; ++i) f->write(chunk.data(), chunk.size());
    // Unaligned tail rides the buffered descriptor.
    f->write(chunk.data(), 100);
  }
  const auto s = async_fs.stats();
  EXPECT_GE(s.direct_writes, 4u);
  EXPECT_GE(s.buffered_writes, 1u);
  EXPECT_EQ(read_all(*fs_, "direct.bin").size(), 4u * 64 * 1024 + 100);
}

TEST_F(AsyncFsTest, OverwritesBarrierTheRing) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  AsyncFileSystem async_fs(*fs_, o);
  {
    auto f = async_fs.open("over.bin", OpenMode::kTruncate);
    std::vector<unsigned char> data(10000, 0x11);
    f->write(data.data(), data.size());
    f->flush();  // settle so the rewrite cannot be patched in staging
    f->seek(100);
    f->write(data.data(), 50);
  }
  EXPECT_GE(async_fs.stats().overwrite_flushes, 1u);
}

TEST_F(AsyncFsTest, ReadModeOpensPassThrough) {
  { (void)fs_->open("r.bin", OpenMode::kTruncate); }
  AsyncFileSystem async_fs(*fs_, AsyncOptions{});
  auto f = async_fs.open("r.bin", OpenMode::kRead);
  EXPECT_EQ(f->size(), 0u);
  EXPECT_TRUE(async_fs.exists("r.bin"));
  async_fs.remove("r.bin");
  EXPECT_FALSE(fs_->exists("r.bin"));
}

TEST_F(AsyncFsTest, ResolvedBackendReportsEngine) {
  AsyncOptions o;
  o.backend = AsyncBackend::kThreadPool;
  AsyncFileSystem tp(*fs_, o);
  EXPECT_EQ(tp.resolved_backend(), AsyncBackend::kThreadPool);
  EXPECT_STREQ(tp.engine_name(), "threads");

  AsyncFileSystem autod(*fs_, AsyncOptions{});
  if (uring_available())
    EXPECT_EQ(autod.resolved_backend(), AsyncBackend::kUring);
  else
    EXPECT_EQ(autod.resolved_backend(), AsyncBackend::kThreadPool);

  MemFileSystem mem;
  AsyncOptions want_uring;
  want_uring.backend = AsyncBackend::kUring;
  AsyncFileSystem shim(mem, want_uring);
  EXPECT_EQ(shim.resolved_backend(), AsyncBackend::kSync);  // pinned
}

}  // namespace
}  // namespace roc::vfs
