/// \file capi_test.cpp
/// \brief Tests for the C bindings (roccom_c.h): registry and mesh-block
/// lifecycle, error reporting, and a full C-driven I/O round trip through
/// a loaded service module.

#include <gtest/gtest.h>

#include <cstring>

#include "comm/env.h"
#include "comm/thread_comm.h"
#include "roccom/io_service.h"
#include "roccom/roccom.h"
#include "roccom/roccom_c.h"
#include "rochdf/rochdf.h"
#include "vfs/vfs.h"

namespace {

TEST(CApi, RegistryLifecycle) {
  COM_registry* com = COM_create();
  ASSERT_NE(com, nullptr);
  EXPECT_EQ(COM_new_window(com, "fluid"), COM_OK);
  EXPECT_EQ(COM_new_window(com, "fluid"), COM_ERR_REGISTRY);
  EXPECT_NE(std::strlen(COM_last_error()), 0u);
  EXPECT_EQ(COM_delete_window(com, "fluid"), COM_OK);
  EXPECT_EQ(COM_delete_window(com, "fluid"), COM_ERR_REGISTRY);
  COM_destroy(com);
}

TEST(CApi, NullArgumentsRejected) {
  EXPECT_EQ(COM_new_window(nullptr, "w"), COM_ERR_INVALID);
  COM_registry* com = COM_create();
  EXPECT_EQ(COM_new_window(com, nullptr), COM_ERR_INVALID);
  EXPECT_EQ(COM_call_function(com, nullptr), COM_ERR_INVALID);
  EXPECT_EQ(COM_block_add_field(nullptr, "f", COM_NODE, 1),
            COM_ERR_INVALID);
  COM_destroy(com);
}

TEST(CApi, BlockCreationAndFieldAccess) {
  COM_block* b = COM_block_structured(5, 3, 3, 3);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(COM_block_add_field(b, "pressure", COM_ELEMENT, 1), COM_OK);
  EXPECT_EQ(COM_block_add_field(b, "pressure", COM_ELEMENT, 1),
            COM_ERR_INVALID);

  size_t n = 0;
  double* coords = COM_block_coords(b, &n);
  ASSERT_NE(coords, nullptr);
  EXPECT_EQ(n, 27u * 3u);
  coords[0] = 1.25;

  double* p = COM_block_field(b, "pressure", &n);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(n, 8u);
  p[3] = 42.0;
  EXPECT_EQ(COM_block_field(b, "missing", &n), nullptr);

  const unsigned long long before = COM_block_checksum(b);
  p[4] = 7.0;
  EXPECT_NE(COM_block_checksum(b), before);
  COM_block_destroy(b);
}

TEST(CApi, InvalidBlockCreationReturnsNull) {
  EXPECT_EQ(COM_block_structured(0, 1, 3, 3), nullptr);
  EXPECT_NE(std::strlen(COM_last_error()), 0u);
  const int bad_conn[4] = {0, 1, 2, 9};  // node 9 of 3
  EXPECT_EQ(COM_block_unstructured(0, 3, bad_conn, 1), nullptr);
}

TEST(CApi, UnstructuredBlock) {
  const int conn[8] = {0, 1, 2, 3, 1, 2, 3, 4};
  COM_block* b = COM_block_unstructured(9, 5, conn, 2);
  ASSERT_NE(b, nullptr);
  size_t n = 0;
  EXPECT_NE(COM_block_coords(b, &n), nullptr);
  EXPECT_EQ(n, 15u);
  COM_block_destroy(b);
}

TEST(CApi, FullIoRoundTripDrivenFromC) {
  // A C computation module: declares a window, registers its block, and
  // drives the collective verbs of a loaded service module through
  // COM_call_function -- no C++ in the "module" code below except the
  // host-side setup of the service.
  roc::vfs::MemFileSystem fs;
  roc::comm::RealEnv env;
  roc::comm::World::run(1, [&](roc::comm::Comm& comm) {
    COM_registry* com = COM_create();
    ASSERT_EQ(COM_new_window(com, "fluid"), COM_OK);
    ASSERT_EQ(COM_new_attribute(com, "fluid", "pressure", COM_ELEMENT, 1),
              COM_OK);

    COM_block* b = COM_block_structured(0, 4, 4, 4);
    ASSERT_EQ(COM_block_add_field(b, "velocity", COM_NODE, 3), COM_OK);
    ASSERT_EQ(COM_block_add_field(b, "pressure", COM_ELEMENT, 1), COM_OK);
    ASSERT_EQ(COM_block_add_field(b, "temperature", COM_ELEMENT, 1), COM_OK);
    size_t n = 0;
    double* p = COM_block_field(b, "pressure", &n);
    for (size_t i = 0; i < n; ++i) p[i] = 2.0 * static_cast<double>(i);
    ASSERT_EQ(COM_register_pane(com, "fluid", 0, b), COM_OK);

    // Host side: load the service and register zero-arg convenience
    // wrappers the C module can invoke by name.
    auto* registry = reinterpret_cast<roc::roccom::Roccom*>(com);
    roc::roccom::IoModuleHandle rio(
        *registry, "RIO",
        std::make_unique<roc::rochdf::Rochdf>(comm, env, fs,
                                              roc::rochdf::Options{}));
    static roc::roccom::IoRequest req{"fluid", "all", "c_snap", 0.0};
    registry->window("RIO").register_function(
        "write_snapshot", [registry](std::span<const roc::roccom::Arg>) {
          roc::roccom::com_write_attribute(*registry, "RIO", req);
        });
    registry->window("RIO").register_function(
        "read_snapshot", [registry](std::span<const roc::roccom::Arg>) {
          roc::roccom::com_read_attribute(*registry, "RIO", req);
        });

    // --- the C module's view from here on ---
    ASSERT_EQ(COM_call_function(com, "RIO.write_snapshot"), COM_OK);
    ASSERT_EQ(COM_call_function(com, "RIO.sync"), COM_OK);
    EXPECT_EQ(COM_call_function(com, "RIO.nope"), COM_ERR_REGISTRY);

    const unsigned long long saved = COM_block_checksum(b);
    p[0] = -1.0;
    p[5] = -1.0;
    EXPECT_NE(COM_block_checksum(b), saved);
    ASSERT_EQ(COM_call_function(com, "RIO.read_snapshot"), COM_OK);
    EXPECT_EQ(COM_block_checksum(b), saved);

    ASSERT_EQ(COM_remove_pane(com, "fluid", 0), COM_OK);
    COM_block_destroy(b);
    rio.unload();
    COM_destroy(com);
  });
  EXPECT_TRUE(fs.exists("c_snap_p0000.shdf"));
}

}  // namespace
