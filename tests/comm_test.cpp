/// \file comm_test.cpp
/// \brief Tests for the thread-backed message-passing runtime: p2p
/// semantics, wildcards, probes, collectives and communicator splitting.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/comm.h"
#include "comm/env.h"
#include "comm/thread_comm.h"

namespace roc::comm {
namespace {

std::vector<unsigned char> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}
std::string string_of(const std::vector<unsigned char>& v) {
  return {v.begin(), v.end()};
}
std::string string_of(const roc::SharedBuffer& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(World, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<uint64_t> rank_mask{0};
  World::run(8, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 8);
    ++count;
    rank_mask |= (1ULL << comm.rank());
  });
  EXPECT_EQ(count.load(), 8);
  EXPECT_EQ(rank_mask.load(), 0xFFu);
}

TEST(World, PropagatesFirstException) {
  EXPECT_THROW(World::run(4,
                          [](Comm& comm) {
                            if (comm.rank() == 2)
                              throw IoError("boom from rank 2");
                            // Other ranks return normally.
                          }),
               IoError);
}

TEST(ThreadComm, PingPong) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, bytes_of("ping"));
      auto m = comm.recv(1, 8);
      EXPECT_EQ(string_of(m.payload), "pong");
      EXPECT_EQ(m.source, 1);
      EXPECT_EQ(m.tag, 8);
    } else {
      auto m = comm.recv(0, 7);
      EXPECT_EQ(string_of(m.payload), "ping");
      comm.send(0, 8, bytes_of("pong"));
    }
  });
}

TEST(ThreadComm, NonOvertakingSameSourceAndTag) {
  World::run(2, [](Comm& comm) {
    constexpr int kN = 100;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i)
        comm.send(1, 3, &i, sizeof(i));
    } else {
      for (int i = 0; i < kN; ++i) {
        auto m = comm.recv(0, 3);
        int v;
        std::memcpy(&v, m.payload.data(), sizeof(v));
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(ThreadComm, TagSelectivity) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, bytes_of("one"));
      comm.send(1, 2, bytes_of("two"));
    } else {
      // Receive out of send order by selecting tags.
      auto m2 = comm.recv(0, 2);
      auto m1 = comm.recv(0, 1);
      EXPECT_EQ(string_of(m2.payload), "two");
      EXPECT_EQ(string_of(m1.payload), "one");
    }
  });
}

TEST(ThreadComm, AnySourceAnyTag) {
  World::run(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      int seen = 0;
      for (int i = 0; i < 3; ++i) {
        auto m = comm.recv(kAnySource, kAnyTag);
        EXPECT_GE(m.source, 1);
        EXPECT_LE(m.source, 3);
        seen |= 1 << m.source;
      }
      EXPECT_EQ(seen, 0b1110);
    } else {
      comm.send(0, 10 + comm.rank(), bytes_of("hi"));
    }
  });
}

TEST(ThreadComm, ProbeDescribesWithoutConsuming) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, bytes_of("payload!"));
    } else {
      Status st = comm.probe(kAnySource, kAnyTag);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.bytes, 8u);
      // Still there:
      Status st2;
      EXPECT_TRUE(comm.iprobe(0, 5, &st2));
      auto m = comm.recv(st.source, st.tag);
      EXPECT_EQ(string_of(m.payload), "payload!");
      EXPECT_FALSE(comm.iprobe(kAnySource, kAnyTag, &st2));
    }
  });
}

TEST(ThreadComm, IprobeReturnsFalseWhenEmpty) {
  World::run(1, [](Comm& comm) {
    Status st;
    EXPECT_FALSE(comm.iprobe(kAnySource, kAnyTag, &st));
  });
}

TEST(ThreadComm, EmptyMessageSignal) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.signal(1, 9);
    } else {
      auto m = comm.recv(0, 9);
      EXPECT_TRUE(m.payload.empty());
    }
  });
}

TEST(ThreadComm, SharedBufferSendEnqueuesReference) {
  // The zero-copy contract: sending a SharedBuffer ships a reference, so
  // the receiver observes the SAME storage, not a copy.
  std::atomic<const unsigned char*> sent{nullptr};
  World::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      SharedBuffer buf = SharedBuffer::adopt({'z', 'c', 'p'});
      sent.store(buf.data());
      comm.send(1, 4, buf);
      EXPECT_GE(buf.use_count(), 1);  // sender's handle still valid
    } else {
      auto m = comm.recv(0, 4);
      EXPECT_EQ(m.payload.data(), sent.load());
      EXPECT_EQ(string_of(m.payload), "zcp");
    }
  });
}

TEST(ThreadComm, SendvDeliversGatheredChain) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<unsigned char> borrowed = {'l', 'l'};
      BufferChain chain;
      chain.append(SharedBuffer::adopt({'h', 'e'}));
      chain.append_borrowed(borrowed.data(), borrowed.size());
      chain.append(SharedBuffer::adopt({'o'}));
      comm.sendv(1, 6, chain);
      // Borrowed bytes may be reused as soon as sendv returns.
    } else {
      auto m = comm.recv(0, 6);
      EXPECT_EQ(string_of(m.payload), "hello");
    }
  });
}

TEST(ThreadComm, SendToInvalidRankThrows) {
  World::run(1, [](Comm& comm) {
    EXPECT_THROW(comm.send(5, 0, nullptr, 0), InvalidArgument);
    EXPECT_THROW(comm.send(-1, 0, nullptr, 0), InvalidArgument);
  });
}

TEST(Collectives, Barrier) {
  // All ranks increment before the barrier; after it everyone sees the full
  // count.
  std::atomic<int> before{0};
  World::run(6, [&](Comm& comm) {
    ++before;
    comm.barrier();
    EXPECT_EQ(before.load(), 6);
  });
}

TEST(Collectives, Bcast) {
  World::run(5, [](Comm& comm) {
    std::vector<unsigned char> data;
    if (comm.rank() == 2) data = bytes_of("from two");
    comm.bcast(data, 2);
    EXPECT_EQ(string_of(data), "from two");
  });
}

TEST(Collectives, GatherIndexedByRank) {
  World::run(4, [](Comm& comm) {
    auto mine = bytes_of(std::string(1, static_cast<char>('a' + comm.rank())));
    auto all = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r)
        EXPECT_EQ(string_of(all[static_cast<size_t>(r)]),
                  std::string(1, static_cast<char>('a' + r)));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Collectives, AllgatherVariableSizes) {
  World::run(4, [](Comm& comm) {
    // Rank r contributes r bytes (rank 0 contributes an empty payload).
    std::vector<unsigned char> mine(static_cast<size_t>(comm.rank()),
                                    static_cast<unsigned char>(comm.rank()));
    auto all = comm.allgather(mine);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[static_cast<size_t>(r)].size(), static_cast<size_t>(r));
      for (auto b : all[static_cast<size_t>(r)])
        EXPECT_EQ(b, static_cast<unsigned char>(r));
    }
  });
}

TEST(Collectives, TypedReductions) {
  World::run(5, [](Comm& comm) {
    const double r = comm.rank();
    EXPECT_DOUBLE_EQ(allreduce_sum(comm, r), 0 + 1 + 2 + 3 + 4);
    EXPECT_DOUBLE_EQ(allreduce_max(comm, r), 4);
    EXPECT_DOUBLE_EQ(allreduce_min(comm, r), 0);
    EXPECT_EQ(allreduce_sum(comm, comm.rank() * 10), 100);
  });
}

TEST(Collectives, ScatterDistributesByRank) {
  for (int n : {1, 2, 3, 5, 8}) {
    World::run(n, [n](Comm& comm) {
      std::vector<std::vector<unsigned char>> parts;
      if (comm.rank() == n / 2) {  // non-zero root
        for (int r = 0; r < n; ++r)
          parts.push_back(bytes_of("to_" + std::to_string(r)));
      }
      const auto mine = comm.scatter(parts, n / 2);
      EXPECT_EQ(string_of(mine), "to_" + std::to_string(comm.rank()));
    });
  }
}

TEST(Collectives, AlltoallPersonalizedExchange) {
  World::run(4, [](Comm& comm) {
    std::vector<std::vector<unsigned char>> parts;
    for (int r = 0; r < 4; ++r)
      parts.push_back(bytes_of(std::to_string(comm.rank()) + "->" +
                               std::to_string(r)));
    const auto got = comm.alltoall(parts);
    ASSERT_EQ(got.size(), 4u);
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(string_of(got[static_cast<size_t>(r)]),
                std::to_string(r) + "->" + std::to_string(comm.rank()));
  });
}

TEST(Collectives, AlltoallVariableSizesAndRepeats) {
  World::run(3, [](Comm& comm) {
    for (int round = 0; round < 3; ++round) {
      std::vector<std::vector<unsigned char>> parts;
      for (int r = 0; r < 3; ++r)
        parts.emplace_back(static_cast<size_t>(comm.rank() + r + round),
                           static_cast<unsigned char>(round));
      const auto got = comm.alltoall(parts);
      for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(got[static_cast<size_t>(r)].size(),
                  static_cast<size_t>(r + comm.rank() + round));
        for (auto b : got[static_cast<size_t>(r)])
          EXPECT_EQ(b, static_cast<unsigned char>(round));
      }
    }
  });
}

TEST(Collectives, BcastAndGatherLargePayloadsAllRoots) {
  // Binomial-tree paths exercised from every root with multi-KB payloads.
  World::run(5, [](Comm& comm) {
    for (int root = 0; root < 5; ++root) {
      std::vector<unsigned char> data;
      if (comm.rank() == root)
        data.assign(10000, static_cast<unsigned char>(root));
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 10000u);
      EXPECT_EQ(data[1234], static_cast<unsigned char>(root));

      std::vector<unsigned char> mine(
          static_cast<size_t>(100 + comm.rank()),
          static_cast<unsigned char>(comm.rank()));
      const auto all = comm.gather(mine, root);
      if (comm.rank() == root) {
        for (int r = 0; r < 5; ++r) {
          ASSERT_EQ(all[static_cast<size_t>(r)].size(),
                    static_cast<size_t>(100 + r));
          EXPECT_EQ(all[static_cast<size_t>(r)][0],
                    static_cast<unsigned char>(r));
        }
      }
    }
  });
}

TEST(Split, GroupsByColorOrderedByKey) {
  World::run(6, [](Comm& comm) {
    // Evens and odds; key reverses the order within each group.
    const int color = comm.rank() % 2;
    auto sub = comm.split(color, -comm.rank());
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->size(), 3);
    // Highest old rank gets new rank 0 (smallest key).
    const int expected_new_rank = (5 - comm.rank()) / 2 - ((comm.rank() % 2) ? 0 : 0);
    // For evens {0,2,4} with keys {0,-2,-4}: order 4,2,0.
    // For odds  {1,3,5} with keys {-1,-3,-5}: order 5,3,1.
    int pos = 0;
    for (int r = 5; r >= 0; --r) {
      if (r % 2 != comm.rank() % 2) continue;
      if (r == comm.rank()) break;
      ++pos;
    }
    EXPECT_EQ(sub->rank(), pos);
    (void)expected_new_rank;

    // The sub-communicator works for messaging.
    const double sum = allreduce_sum(*sub, 1.0);
    EXPECT_DOUBLE_EQ(sum, 3.0);
  });
}

TEST(Split, NegativeColorYieldsNull) {
  World::run(4, [](Comm& comm) {
    auto sub = comm.split(comm.rank() == 0 ? -1 : 0, comm.rank());
    if (comm.rank() == 0) {
      EXPECT_EQ(sub, nullptr);
    } else {
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), 3);
      sub->barrier();
    }
  });
}

TEST(Split, ParentAndChildTrafficDoNotCross) {
  World::run(4, [](Comm& comm) {
    auto sub = comm.split(comm.rank() / 2, comm.rank());
    // Same-tag messages on parent and child must not cross-match.
    if (comm.rank() == 0) {
      comm.send(1, 42, bytes_of("parent"));
      sub->send(1, 42, bytes_of("child"));
    } else if (comm.rank() == 1) {
      auto c = sub->recv(0, 42);
      auto p = comm.recv(0, 42);
      EXPECT_EQ(string_of(c.payload), "child");
      EXPECT_EQ(string_of(p.payload), "parent");
    }
    comm.barrier();
  });
}

TEST(Split, SplitOfSplit) {
  World::run(8, [](Comm& comm) {
    auto half = comm.split(comm.rank() / 4, comm.rank());  // two groups of 4
    ASSERT_NE(half, nullptr);
    auto quarter = half->split(half->rank() / 2, half->rank());
    ASSERT_NE(quarter, nullptr);
    EXPECT_EQ(quarter->size(), 2);
    EXPECT_DOUBLE_EQ(allreduce_sum(*quarter, 1.0), 2.0);
  });
}

TEST(RealEnv, GatePredicateLoop) {
  RealEnv env;
  auto gate = env.make_gate();
  bool flag = false;
  auto worker = env.spawn_worker([&] {
    GateLock lock(*gate);
    flag = true;
    gate->notify_all();
  });
  {
    gate->lock();
    while (!flag) gate->wait();
    gate->unlock();
  }
  worker->join();
  EXPECT_TRUE(flag);
}

TEST(RealEnv, NowAdvances) {
  RealEnv env;
  const double t0 = env.now();
  env.compute(0.01);
  EXPECT_GE(env.now() - t0, 0.009);
}

}  // namespace
}  // namespace roc::comm
