/// \file check_test.cpp
/// \brief The concurrency checker: vector-clock algebra, happens-before
/// edges across all four sync primitives (Mutex, CondVar, Gate, message),
/// lock-order cycle detection, and seed-replay determinism of the
/// schedule explorer.

#include <gtest/gtest.h>

#include "check/checker.h"
#include "check/explorer.h"
#include "check/scenarios.h"
#include "check/vector_clock.h"
#include "comm/env.h"
#include "comm/thread_comm.h"
#include "util/check_hooks.h"
#include "util/mutex.h"
#include "util/thread.h"

namespace roc::check {
namespace {

// --- vector-clock algebra ----------------------------------------------------

TEST(VectorClock, GetSetTick) {
  VectorClock vc;
  EXPECT_TRUE(vc.empty());
  EXPECT_EQ(vc.get(3), 0u);
  vc.set(3, 7);
  EXPECT_EQ(vc.get(3), 7u);
  vc.tick(3);
  vc.tick(5);
  EXPECT_EQ(vc.get(3), 8u);
  EXPECT_EQ(vc.get(5), 1u);
  EXPECT_EQ(vc.str(), "{3:8, 5:1}");
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock a, b;
  a.set(0, 3);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 4u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, CoversEpochAndClock) {
  VectorClock a;
  a.set(0, 3);
  EXPECT_TRUE(a.covers(Epoch{0, 3}));
  EXPECT_TRUE(a.covers(Epoch{0, 2}));
  EXPECT_FALSE(a.covers(Epoch{0, 4}));
  EXPECT_TRUE(a.covers(Epoch{1, 0}));  // zero components always covered
  EXPECT_FALSE(a.covers(Epoch{1, 1}));

  VectorClock b;
  b.set(0, 2);
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  b.set(1, 1);
  EXPECT_FALSE(a.covers(b));
}

TEST(VectorClock, EqualityIsSemantic) {
  VectorClock a, b;
  a.set(0, 2);
  b.set(0, 2);
  b.set(1, 0);  // explicit zero must not break equality
  EXPECT_TRUE(a == b);
  b.tick(1);
  EXPECT_FALSE(a == b);
}

// --- happens-before edges, one per sync primitive ----------------------------
//
// Each positive test runs a cross-thread handoff that IS properly ordered
// and must stay silent; the negative test drops the synchronization and
// must trip.  roc::Thread spawn/join themselves carry HB edges, so the
// negative test uses two concurrent siblings (never ordered against each
// other).

TEST(HappensBefore, UnsynchronizedSiblingWritesRace) {
  Session s;
  s.install();
  int cell = 0;
  {
    roc::Thread a([&] {
      ROC_CHECK_SHARED_WRITE(&cell, "hb.cell");
      cell = 1;
    });
    roc::Thread b([&] {
      ROC_CHECK_SHARED_WRITE(&cell, "hb.cell");
      cell = 2;
    });
  }
  s.uninstall();
  ASSERT_TRUE(s.has_findings());
  EXPECT_EQ(s.findings()[0].kind, Finding::Kind::kRace);
  EXPECT_NE(s.findings()[0].summary.find("hb.cell"), std::string::npos);
}

TEST(HappensBefore, MutexOrdersSiblingWrites) {
  Session s;
  s.install();
  int cell = 0;
  {
    roc::Mutex m("hb-mutex");
    roc::Thread a([&] {
      MutexLock l(m);
      ROC_CHECK_SHARED_WRITE(&cell, "hb.cell");
      cell = 1;
    });
    roc::Thread b([&] {
      MutexLock l(m);
      ROC_CHECK_SHARED_WRITE(&cell, "hb.cell");
      cell = 2;
    });
  }
  s.uninstall();
  EXPECT_FALSE(s.has_findings()) << s.report();
}

TEST(HappensBefore, CondVarHandoffIsOrdered) {
  Session s;
  s.install();
  int cell = 0;
  {
    roc::Mutex m("hb-cv");
    roc::CondVar cv;
    bool ready = false;
    roc::Thread consumer([&] {
      MutexLock l(m);
      while (!ready) cv.wait(m);
      ROC_CHECK_SHARED_READ(&cell, "hb.cell");
      EXPECT_EQ(cell, 42);
    });
    // The payload write happens OUTSIDE the mutex; only the CondVar
    // protocol (release at wait, acquire at wakeup) orders it.
    ROC_CHECK_SHARED_WRITE(&cell, "hb.cell");
    cell = 42;
    {
      MutexLock l(m);
      ready = true;
    }
    cv.notify_all();
  }
  s.uninstall();
  EXPECT_FALSE(s.has_findings()) << s.report();
}

TEST(HappensBefore, GateHandoffIsOrdered) {
  Session s;
  s.install();
  int cell = 0;
  {
    comm::RealEnv env;
    auto gate = env.make_gate();
    bool ready = false;
    roc::Thread consumer([&] {
      comm::GateLock l(*gate);
      while (!ready) gate->wait();
      ROC_CHECK_SHARED_READ(&cell, "hb.cell");
      EXPECT_EQ(cell, 7);
    });
    ROC_CHECK_SHARED_WRITE(&cell, "hb.cell");
    cell = 7;
    {
      comm::GateLock l(*gate);
      ready = true;
    }
    gate->notify_all();
  }
  s.uninstall();
  EXPECT_FALSE(s.has_findings()) << s.report();
}

TEST(HappensBefore, MessageReceiveOrdersPayload) {
  Session s;
  s.install();
  int cell = 0;
  comm::World::run(2, [&](comm::Comm& world) {
    if (world.rank() == 0) {
      ROC_CHECK_SHARED_WRITE(&cell, "hb.cell");
      cell = 9;
      const int v = 9;
      world.send(1, 5, &v, sizeof(v));
    } else {
      (void)world.recv(0, 5);
      ROC_CHECK_SHARED_READ(&cell, "hb.cell");
      EXPECT_EQ(cell, 9);
    }
  });
  s.uninstall();
  EXPECT_FALSE(s.has_findings()) << s.report();
}

// --- lock-order cycles -------------------------------------------------------

TEST(LockOrder, ThreeMutexCycleIsReported) {
  // Drives the hook API directly with dummy lock identities: actually
  // acquiring three mutexes in ABBA order would (correctly) trip TSan's
  // own deadlock detector and kill the test under -DROCPIO_SANITIZE=thread.
  Session s;
  s.install();
  {
    int a = 0, b = 0, c = 0;
    auto pair = [&s](void* first, const char* fname, void* second,
                     const char* sname) {
      s.lock_acquire(first, fname, "cycle_fixture.cpp", 1);
      s.lock_acquire(second, sname, "cycle_fixture.cpp", 2);
      s.lock_release(second);
      s.lock_release(first);
    };
    pair(&a, "lock-a", &b, "lock-b");  // edge a -> b
    pair(&b, "lock-b", &c, "lock-c");  // edge b -> c
    pair(&c, "lock-c", &a, "lock-a");  // edge c -> a: closes the cycle
    ASSERT_TRUE(s.has_findings());
    const Finding f = s.findings()[0];
    EXPECT_EQ(f.kind, Finding::Kind::kLockCycle);
    // The report names both acquisition stacks that close the cycle.
    EXPECT_NE(f.detail.find("this acquisition"), std::string::npos)
        << f.detail;
    EXPECT_NE(f.detail.find("earlier acquisition"), std::string::npos)
        << f.detail;
    EXPECT_NE(f.detail.find("lock-a"), std::string::npos) << f.detail;
    EXPECT_NE(f.detail.find("lock-c"), std::string::npos) << f.detail;
  }
  s.uninstall();
}

TEST(LockOrder, ConsistentNestingIsClean) {
  Session s;
  s.install();
  {
    roc::Mutex a("lock-a"), b("lock-b");
    for (int i = 0; i < 3; ++i) {
      MutexLock l1(a);
      MutexLock l2(b);
    }
  }
  s.uninstall();
  EXPECT_FALSE(s.has_findings()) << s.report();
}

TEST(LockOrder, NamedEdgesSurviveLockDestruction) {
  // The cycle-detection graph is address-keyed and pruned when a lock
  // dies; the exported name-keyed edges must NOT be — an observed
  // ordering stays observed (that is what the static-subset check
  // compares against).
  Session s;
  s.install();
  {
    roc::Mutex a("outer"), b("inner");
    MutexLock l1(a);
    MutexLock l2(b);
  }  // both mutexes destroyed here: lock_destroy fires
  s.uninstall();
  const auto edges = s.lock_order_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "outer");
  EXPECT_EQ(edges[0].to, "inner");
  ASSERT_EQ(edges[0].stack.size(), 2u);
  EXPECT_NE(edges[0].stack[0].find("outer acquired at"), std::string::npos);
  EXPECT_NE(edges[0].stack[1].find("inner acquiring at"), std::string::npos);
}

TEST(LockOrder, SameNameDistinctObjectsIsNotAnEdge) {
  // Two memfile mutexes (one per file) share a runtime name; nesting them
  // is not a lock-ORDER fact between distinct named locks, and exporting
  // a self-edge would poison the subset comparison.
  Session s;
  s.install();
  {
    roc::Mutex a("memfile"), b("memfile");
    MutexLock l1(a);
    MutexLock l2(b);
  }
  s.uninstall();
  EXPECT_TRUE(s.lock_order_edges().empty());
}

TEST(LockOrder, DumpLockOrderJsonRoundTrips) {
  Session s;
  s.install();
  {
    roc::Mutex a("outer\"quoted"), b("inner");
    MutexLock l1(a);
    MutexLock l2(b);
  }
  s.uninstall();
  std::string doc;
  write_lock_order_json(s.lock_order_edges(), &doc);
  EXPECT_NE(doc.find("\"kind\": \"runtime-lock-order-graph\""),
            std::string::npos)
      << doc;
  // The quote in the lock name must be escaped, not emitted raw.
  EXPECT_NE(doc.find("outer\\\"quoted"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"to\": \"inner\""), std::string::npos) << doc;
}

TEST(LockOrder, WaitReacquisitionCreatesNoEdge) {
  // wait_end re-acquires with record_order=false: the ordering was
  // checked when the gate was first locked, and the runtime graph must
  // not grow edges the static analysis (which subtracts released locks
  // at wait sites) will never produce.
  Session s;
  s.install();
  int gate = 0, other = 0;
  s.lock_acquire(&other, "other", "wait_fixture.cpp", 1);
  s.lock_acquire(&gate, "gate-x", "wait_fixture.cpp", 2);
  s.wait_begin(&gate);
  s.wait_end(&gate, "gate-x", "wait_fixture.cpp", 3);
  s.lock_release(&gate);
  s.lock_release(&other);
  s.uninstall();
  const auto edges = s.lock_order_edges();
  ASSERT_EQ(edges.size(), 1u);  // only other -> gate-x, once
  EXPECT_EQ(edges[0].from, "other");
  EXPECT_EQ(edges[0].to, "gate-x");
}

// --- seed-driven exploration and replay --------------------------------------

TEST(Explorer, SameSeedReplaysIdentically) {
  auto run = [](uint64_t seed) {
    Session session;
    Explorer::Options o;
    o.seed = seed;
    Explorer explorer(o);
    auto result = run_scenario("racy", session, explorer);
    EXPECT_TRUE(result.ok()) << result.error;
    return std::pair{session.report(), explorer.trace_json()};
  };
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto first = run(seed);
    const auto second = run(seed);
    EXPECT_EQ(first.first, second.first) << "report diverged, seed " << seed;
    EXPECT_EQ(first.second, second.second) << "trace diverged, seed " << seed;
  }
}

TEST(Explorer, SweepCatchesThePlantedRace) {
  bool caught = false;
  for (uint64_t seed = 1; seed <= 16 && !caught; ++seed) {
    Session session;
    Explorer::Options o;
    o.seed = seed;
    Explorer explorer(o);
    auto result = run_scenario("racy", session, explorer);
    ASSERT_TRUE(result.ok()) << result.error;
    for (const auto& f : session.findings())
      caught |= f.kind == Finding::Kind::kRace;
  }
  EXPECT_TRUE(caught) << "no seed in 1..16 exposed the planted race";
}

TEST(Explorer, DifferentSeedsExploreDifferentSchedules) {
  auto trace = [](uint64_t seed) {
    Session session;
    Explorer::Options o;
    o.seed = seed;
    Explorer explorer(o);
    (void)run_scenario("trochdf", session, explorer);
    EXPECT_FALSE(session.has_findings()) << session.report();
    return explorer.trace_json();
  };
  // Not universally guaranteed, but with preemption injection across a
  // whole T-Rochdf run, 1 vs 2 colliding would indicate a wired-off rng.
  EXPECT_NE(trace(1), trace(2));
}

}  // namespace
}  // namespace roc::check
