/// \file rocblas_test.cpp
/// \brief Tests for Rocblas-lite: element-wise operators over window
/// attributes, partition-independent global reductions, and the loadable
/// module interface.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "rocblas/rocblas.h"

namespace roc::rocblas {
namespace {

using roccom::Arg;
using roccom::Roccom;

/// Two fields ("x", "y") on every block so the binary ops have operands.
mesh::MeshBlock make_xy_block(int id, int n) {
  auto b = mesh::MeshBlock::structured(id, {n, n, n});
  b.add_field("x", mesh::Centering::kElement, 1);
  b.add_field("y", mesh::Centering::kElement, 1);
  // Fetch after both insertions: add_field may reallocate the field table.
  auto& x = b.field("x");
  std::iota(x.data.begin(), x.data.end(), static_cast<double>(id));
  return b;
}

class RocblasFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& w = com_.create_window("v");
    w.declare_field({"x", mesh::Centering::kElement, 1});
    w.declare_field({"y", mesh::Centering::kElement, 1});
    blocks_.push_back(make_xy_block(0, 3));
    blocks_.push_back(make_xy_block(1, 4));  // irregular sizes
    for (auto& b : blocks_) w.register_pane(b.id(), &b);
  }
  Roccom com_;
  std::vector<mesh::MeshBlock> blocks_;
};

TEST_F(RocblasFixture, FillScaleCopy) {
  fill(com_, "v", "y", 2.5);
  for (const auto& b : blocks_)
    for (double v : b.field("y").data) EXPECT_DOUBLE_EQ(v, 2.5);

  scale(com_, "v", "y", 2.0);
  for (const auto& b : blocks_)
    for (double v : b.field("y").data) EXPECT_DOUBLE_EQ(v, 5.0);

  copy(com_, "v", "x", "y");
  for (const auto& b : blocks_)
    EXPECT_EQ(b.field("y").data, b.field("x").data);
}

TEST_F(RocblasFixture, AxpyAndJump) {
  fill(com_, "v", "y", 1.0);
  axpy(com_, "v", 3.0, "x", "y");
  for (const auto& b : blocks_)
    for (size_t i = 0; i < b.field("y").data.size(); ++i)
      EXPECT_DOUBLE_EQ(b.field("y").data[i],
                       1.0 + 3.0 * b.field("x").data[i]);

  jump(com_, "v", -1.0, "x", 10.0, "y");
  for (const auto& b : blocks_)
    for (size_t i = 0; i < b.field("y").data.size(); ++i)
      EXPECT_DOUBLE_EQ(b.field("y").data[i],
                       10.0 - b.field("x").data[i]);
}

TEST_F(RocblasFixture, MissingFieldThrows) {
  EXPECT_THROW(fill(com_, "v", "nope", 0.0), InvalidArgument);
  EXPECT_THROW(axpy(com_, "v", 1.0, "x", "nope"), InvalidArgument);
}

TEST(Rocblas, GlobalReductionsSingleProcess) {
  comm::World::run(1, [](comm::Comm& comm) {
    Roccom com;
    auto& w = com.create_window("v");
    w.declare_field({"x", mesh::Centering::kElement, 1});
    w.declare_field({"y", mesh::Centering::kElement, 1});
    auto b = make_xy_block(0, 3);  // x = 0..7 over 8 elements
    w.register_pane(0, &b);

    EXPECT_DOUBLE_EQ(global_sum(comm, com, "v", "x"), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
    EXPECT_DOUBLE_EQ(global_min(comm, com, "v", "x"), 0);
    EXPECT_DOUBLE_EQ(global_max(comm, com, "v", "x"), 7);
    fill(com, "v", "y", 2.0);
    EXPECT_DOUBLE_EQ(dot(comm, com, "v", "x", "y"), 2.0 * 28);
    fill(com, "v", "x", 3.0);
    EXPECT_DOUBLE_EQ(norm2(comm, com, "v", "x"),
                     std::sqrt(9.0 * 8));
  });
}

TEST(Rocblas, ReductionsArePartitionIndependent) {
  // The same 6 blocks on 1, 2 and 3 processes give bit-identical results.
  std::vector<double> dots, sums;
  for (int nprocs : {1, 2, 3}) {
    double d = 0, s = 0;
    comm::World::run(nprocs, [&](comm::Comm& comm) {
      Roccom com;
      auto& w = com.create_window("v");
      w.declare_field({"x", mesh::Centering::kElement, 1});
      w.declare_field({"y", mesh::Centering::kElement, 1});
      std::vector<mesh::MeshBlock> mine;
      for (int id = 0; id < 6; ++id) {
        if (id % nprocs != comm.rank()) continue;
        auto b = make_xy_block(id, 3 + id % 3);
        auto& y = b.field("y");
        for (size_t i = 0; i < y.data.size(); ++i)
          y.data[i] = 0.1 * static_cast<double>(i) - id;
        mine.push_back(std::move(b));
      }
      for (auto& b : mine) w.register_pane(b.id(), &b);
      const double dd = dot(comm, com, "v", "x", "y");
      const double ss = global_sum(comm, com, "v", "y");
      if (comm.rank() == 0) {
        d = dd;
        s = ss;
      }
    });
    dots.push_back(d);
    sums.push_back(s);
  }
  EXPECT_EQ(dots[0], dots[1]);
  EXPECT_EQ(dots[1], dots[2]);
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[1], sums[2]);
}

TEST(Rocblas, LoadableModuleInterface) {
  comm::World::run(1, [](comm::Comm& comm) {
    Roccom com;
    auto& w = com.create_window("v");
    w.declare_field({"x", mesh::Centering::kElement, 1});
    w.declare_field({"y", mesh::Centering::kElement, 1});
    auto b = make_xy_block(0, 3);
    w.register_pane(0, &b);

    RocblasModuleHandle blas(com, comm, "BLAS");
    EXPECT_TRUE(com.has_window("BLAS"));

    com.call_function("BLAS.fill",
                      {Arg(std::string("v")), Arg(std::string("y")),
                       Arg(2.0)});
    EXPECT_DOUBLE_EQ(b.field("y").data[0], 2.0);

    com.call_function("BLAS.axpy",
                      {Arg(std::string("v")), Arg(0.5),
                       Arg(std::string("x")), Arg(std::string("y"))});
    EXPECT_DOUBLE_EQ(b.field("y").data[3], 2.0 + 0.5 * 3.0);

    double out = 0;
    com.call_function("BLAS.dot",
                      {Arg(std::string("v")), Arg(std::string("x")),
                       Arg(std::string("x")),
                       Arg(static_cast<void*>(&out))});
    EXPECT_DOUBLE_EQ(out, 0 + 1 + 4 + 9 + 16 + 25 + 36 + 49);

    // Bad arity is a structured error.
    EXPECT_THROW(com.call_function("BLAS.fill", {Arg(1.0)}),
                 InvalidArgument);

    blas.unload();
    EXPECT_FALSE(com.has_window("BLAS"));
  });
}

}  // namespace
}  // namespace roc::rocblas
