/// \file rocface_test.cpp
/// \brief Tests for Rocface-lite: interface detection, fluid->solid
/// transfer values, partition independence, and the coupled GenxRun.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "comm/thread_comm.h"
#include "genx/orchestrator.h"
#include "genx/rocface.h"
#include "mesh/generators.h"
#include "rochdf/rochdf.h"
#include "vfs/vfs.h"

namespace roc::genx {
namespace {

using roccom::Roccom;

/// A lab-scale mesh registered into fluid/solid windows on one process.
struct Fixture {
  Fixture(int fluid_blocks, int solid_blocks) {
    mesh::LabScaleSpec spec;
    spec.fluid_blocks = fluid_blocks;
    spec.solid_blocks = solid_blocks;
    spec.base_block_nodes = 6;
    rocket = mesh::make_lab_scale_rocket(spec);
    auto& wf = com.create_window("fluid");
    auto& ws = com.create_window("solid");
    for (auto& b : rocket.fluid) wf.register_pane(b.id(), &b);
    for (auto& b : rocket.solid) ws.register_pane(b.id(), &b);
  }
  mesh::RocketMesh rocket;
  Roccom com;
};

TEST(Rocface, FluidSamplesLieOnOuterSurface) {
  Fixture f(4, 2);
  const auto samples = fluid_interface_samples(f.com, "fluid");
  ASSERT_FALSE(samples.empty());
  // Every sample's radius is near its block's outer radius (0.6 * R).
  for (const auto& s : samples) {
    const double r = std::sqrt(s.x * s.x + s.y * s.y);
    EXPECT_GT(r, 0.6 * 0.1 * 0.8) << "sample not near the outer surface";
  }
  // Far fewer samples than nodes: it is a surface, not the volume.
  size_t total_nodes = 0;
  for (const auto& b : f.rocket.fluid) total_nodes += b.node_count();
  EXPECT_LT(samples.size(), total_nodes / 2);
}

TEST(Rocface, SolidInterfaceNodesAreInnermost) {
  Fixture f(2, 2);
  const auto& b = f.rocket.solid[0];
  const auto nodes = solid_interface_nodes(b);
  ASSERT_FALSE(nodes.empty());
  EXPECT_LT(nodes.size(), b.node_count());
  // Interface nodes are at smaller radius than the block's average.
  double avg = 0;
  for (size_t n = 0; n < b.node_count(); ++n)
    avg += std::sqrt(b.coords()[3 * n] * b.coords()[3 * n] +
                     b.coords()[3 * n + 1] * b.coords()[3 * n + 1]);
  avg /= static_cast<double>(b.node_count());
  for (int n : nodes) {
    const double r =
        std::sqrt(b.coords()[3 * n] * b.coords()[3 * n] +
                  b.coords()[3 * n + 1] * b.coords()[3 * n + 1]);
    EXPECT_LT(r, avg);
  }
}

TEST(Rocface, TransferCarriesFluidPressureToSolidSurface) {
  comm::World::run(1, [](comm::Comm& comm) {
    Fixture f(4, 2);
    // Distinct pressure per fluid block so the mapping is observable.
    for (auto& b : f.rocket.fluid) {
      auto& p = b.field("pressure");
      p.data.assign(p.data.size(), 10.0 + b.id());
    }
    const size_t mapped =
        transfer_fluid_to_solid(comm, f.com, "fluid", "solid");
    EXPECT_GT(mapped, 0u);

    for (const auto& b : f.rocket.solid) {
      const auto& load = b.field(kSurfaceLoadField).data;
      const auto surface = solid_interface_nodes(b);
      // Surface nodes carry one of the fluid pressures; interior stays 0.
      std::set<int> surf(surface.begin(), surface.end());
      size_t nonzero = 0;
      for (size_t n = 0; n < load.size(); ++n) {
        if (surf.count(static_cast<int>(n))) {
          EXPECT_GE(load[n], 10.0);
          EXPECT_LE(load[n], 10.0 + 10);
          ++nonzero;
        } else {
          EXPECT_EQ(load[n], 0.0);
        }
      }
      EXPECT_EQ(nonzero, surface.size());
    }
  });
}

TEST(Rocface, TransferIsPartitionIndependent) {
  // The same mesh on 1, 2, 3 processes: identical surface loads.
  std::vector<uint64_t> sums;
  for (int nprocs : {1, 2, 3}) {
    uint64_t sum = 0;
    comm::World::run(nprocs, [&](comm::Comm& comm) {
      mesh::LabScaleSpec spec;
      spec.fluid_blocks = 6;
      spec.solid_blocks = 4;
      spec.base_block_nodes = 5;
      auto rocket = mesh::make_lab_scale_rocket(spec);
      Roccom com;
      auto& wf = com.create_window("fluid");
      auto& ws = com.create_window("solid");
      // Round-robin distribution over processes.
      std::vector<mesh::MeshBlock> mine;
      int idx = 0;
      for (auto& b : rocket.fluid)
        if (idx++ % nprocs == comm.rank()) mine.push_back(std::move(b));
      for (auto& b : rocket.solid)
        if (idx++ % nprocs == comm.rank()) mine.push_back(std::move(b));
      for (auto& b : mine) {
        auto& p = b.find_field("pressure") ? b.field("pressure").data
                                           : b.field("surface_load").data;
        (void)p;
        if (b.find_field("pressure"))
          b.field("pressure").data.assign(b.field("pressure").data.size(),
                                          5.0 + b.id());
        (b.kind() == mesh::MeshKind::kStructured ? wf : ws)
            .register_pane(b.id(), &b);
      }
      (void)transfer_fluid_to_solid(comm, com, "fluid", "solid");
      // Fingerprint of all local solid loads, XOR-combined globally.
      uint64_t local = 0;
      for (const auto& b : mine)
        if (b.kind() == mesh::MeshKind::kUnstructured)
          local ^= b.state_checksum();
      const uint64_t s = comm::allreduce(
          comm, local, [](uint64_t a, uint64_t b) { return a ^ b; });
      if (comm.rank() == 0) sum = s;
    });
    sums.push_back(sum);
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[1], sums[2]);
}

TEST(Rocface, CoupledGenxRunRestartEquivalence) {
  // The full restart-equivalence invariant holds WITH the interface
  // coupling enabled.
  auto drive = [&](vfs::FileSystem& fs, int steps, bool restart,
                   bool initial_snapshot, uint64_t* out) {
    comm::World::run(2, [&](comm::Comm& comm) {
      comm::RealEnv env;
      rochdf::Rochdf io(comm, env, fs, rochdf::Options{});
      GenxConfig cfg;
      cfg.mesh_spec.fluid_blocks = 4;
      cfg.mesh_spec.solid_blocks = 3;
      cfg.mesh_spec.base_block_nodes = 5;
      cfg.steps = steps;
      cfg.snapshot_interval = 8;
      cfg.use_rocface = true;
      cfg.write_initial_snapshot = initial_snapshot;
      cfg.run_name = "cpl";
      GenxRun run(comm, env, io, cfg);
      if (restart) {
        run.init_restart("cpl_snap_000008");
      } else {
        run.init_fresh();
      }
      run.run();
      const uint64_t s = run.global_state_checksum();
      if (comm.rank() == 0) *out = s;
    });
  };

  uint64_t reference = 0;
  {
    vfs::MemFileSystem fs;
    drive(fs, 16, false, true, &reference);
  }
  uint64_t resumed = 0;
  {
    vfs::MemFileSystem fs;
    drive(fs, 8, false, true, &resumed);
    drive(fs, 8, true, false, &resumed);
  }
  EXPECT_EQ(reference, resumed);
}

TEST(Rocface, CouplingActuallyChangesTheSolution) {
  // Sanity: enabling the transfer alters the state (the load is used).
  auto run_once = [&](bool coupled) {
    uint64_t sum = 0;
    vfs::MemFileSystem fs;
    comm::World::run(1, [&](comm::Comm& comm) {
      comm::RealEnv env;
      rochdf::Rochdf io(comm, env, fs, rochdf::Options{});
      GenxConfig cfg;
      cfg.mesh_spec.fluid_blocks = 4;
      cfg.mesh_spec.solid_blocks = 3;
      cfg.mesh_spec.base_block_nodes = 5;
      cfg.steps = 10;
      cfg.snapshot_interval = 0;
      cfg.use_rocface = coupled;
      GenxRun run(comm, env, io, cfg);
      run.init_fresh();
      run.run();
      sum = run.global_state_checksum();
    });
    return sum;
  };
  EXPECT_NE(run_once(true), run_once(false));
}

}  // namespace
}  // namespace roc::genx
