/// \file genx_test.cpp
/// \brief Integration tests for the mini-GENx simulation: the full
/// multi-component time loop over the real I/O stacks, snapshot layout,
/// adaptive refinement, and the restart-equivalence invariant
/// (DESIGN.md §6.8) under both Rochdf and Rocpanda, across deployment
/// shapes.

#include <gtest/gtest.h>

#include "comm/thread_comm.h"
#include "genx/orchestrator.h"
#include "roccom/blockio.h"
#include "rochdf/rochdf.h"
#include "rocpanda/client.h"
#include "rocpanda/server.h"
#include "shdf/reader.h"
#include "vfs/vfs.h"

namespace roc::genx {
namespace {

GenxConfig small_config(const std::string& name) {
  GenxConfig cfg;
  cfg.mesh_spec.fluid_blocks = 6;
  cfg.mesh_spec.solid_blocks = 4;
  cfg.mesh_spec.base_block_nodes = 5;
  cfg.steps = 20;
  cfg.snapshot_interval = 10;
  cfg.run_name = name;
  return cfg;
}

/// Runs `body(clients, env, io)` on `nclients` thread-backed processes
/// with a Rochdf service.
void with_rochdf(int nclients, vfs::FileSystem& fs, bool threaded,
                 const std::function<void(comm::Comm&, comm::Env&,
                                          roccom::IoService&)>& body) {
  comm::World::run(nclients, [&](comm::Comm& comm) {
    comm::RealEnv env;
    rochdf::Options o;
    o.threaded = threaded;
    rochdf::Rochdf io(comm, env, fs, o);
    body(comm, env, io);
  });
}

/// Same with a full Rocpanda deployment (adds `nservers` processes).
void with_rocpanda(int nclients, int nservers, vfs::FileSystem& fs,
                   const std::function<void(comm::Comm&, comm::Env&,
                                            roccom::IoService&)>& body) {
  comm::World::run(nclients + nservers, [&](comm::Comm& world) {
    comm::RealEnv env;
    const rocpanda::Layout layout(world.size(), nservers);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)rocpanda::run_server(world, *local, env, fs, layout,
                                 rocpanda::ServerOptions{});
    } else {
      rocpanda::RocpandaClient client(world, env, layout);
      body(*local, env, client);
      client.shutdown();
    }
  });
}

TEST(Genx, FreshRunProducesAllSnapshots) {
  vfs::MemFileSystem fs;
  with_rochdf(2, fs, /*threaded=*/false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxRun run(clients, env, io, small_config("g1"));
                run.init_fresh();
                EXPECT_GT(run.local_block_count(), 0u);
                run.run();
                EXPECT_EQ(run.current_step(), 20);
                EXPECT_EQ(run.stats().snapshots_written, 3);  // 0, 10, 20
              });
  // 3 snapshots x 2 processes.
  EXPECT_EQ(fs.list("g1_snap_").size(), 6u);
}

TEST(Genx, SnapshotContainsAllThreeWindows) {
  vfs::MemFileSystem fs;
  with_rochdf(1, fs, false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxRun run(clients, env, io, small_config("g2"));
                run.init_fresh();
                run.run();
              });
  shdf::Reader r(fs, "g2_snap_000020_p0000.shdf");
  EXPECT_FALSE(roccom::pane_ids_in_file(r, "fluid").empty());
  EXPECT_FALSE(roccom::pane_ids_in_file(r, "solid").empty());
  EXPECT_FALSE(roccom::pane_ids_in_file(r, "burn").empty());
}

TEST(Genx, PhysicsEvolvesState) {
  vfs::MemFileSystem fs;
  with_rochdf(1, fs, false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxConfig cfg = small_config("g3");
                cfg.snapshot_interval = 0;
                GenxRun run(clients, env, io, cfg);
                run.init_fresh();
                const uint64_t before = run.global_state_checksum();
                run.run();
                EXPECT_NE(run.global_state_checksum(), before);
              });
}

TEST(Genx, StateChecksumIsPartitionIndependent) {
  // The same simulation on 1, 2 and 3 clients must land on the SAME
  // distributed state (bit-exact coupling reduction).
  vfs::MemFileSystem fs;
  std::vector<uint64_t> sums;
  for (int nclients : {1, 2, 3}) {
    uint64_t sum = 0;
    with_rochdf(nclients, fs, false,
                [&](comm::Comm& clients, comm::Env& env,
                    roccom::IoService& io) {
                  GenxConfig cfg = small_config("g4");
                  cfg.snapshot_interval = 0;
                  GenxRun run(clients, env, io, cfg);
                  run.init_fresh();
                  run.run();
                  const uint64_t s = run.global_state_checksum();  // collective
                  if (clients.rank() == 0) sum = s;
                });
    sums.push_back(sum);
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[1], sums[2]);
}

class GenxRestartTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GenxRestartTest, RestartEquivalence) {
  // (run 2k steps) == (run k, restart from snapshot k, run k) — the
  // paper's checkpoint contract, exercised over each I/O stack.
  const std::string mode = GetParam();
  const int k = 10;

  auto drive = [&](vfs::FileSystem& fs, const GenxConfig& cfg, bool restart,
                   uint64_t* out) {
    auto body = [&](comm::Comm& clients, comm::Env& env,
                    roccom::IoService& io) {
      GenxRun run(clients, env, io, cfg);
      if (restart) {
        run.init_restart(cfg.run_name + "_snap_000010");
      } else {
        run.init_fresh();
      }
      run.run();
      const uint64_t s = run.global_state_checksum();  // collective
      if (clients.rank() == 0) *out = s;
    };
    if (mode == std::string("rochdf")) {
      with_rochdf(2, fs, false, body);
    } else if (mode == std::string("t-rochdf")) {
      with_rochdf(2, fs, true, body);
    } else {
      with_rocpanda(3, 1, fs, body);
    }
  };

  // Reference: 2k steps in one go.
  uint64_t reference = 0;
  {
    vfs::MemFileSystem fs;
    GenxConfig cfg = small_config("ref");
    cfg.steps = 2 * k;
    cfg.snapshot_interval = k;
    drive(fs, cfg, false, &reference);
  }

  // Interrupted: k steps, then restart and k more.
  uint64_t resumed = 0;
  {
    vfs::MemFileSystem fs;
    GenxConfig cfg = small_config("ref");
    cfg.steps = k;
    cfg.snapshot_interval = k;
    drive(fs, cfg, false, &resumed);
    GenxConfig cfg2 = small_config("ref");
    cfg2.steps = k;
    cfg2.snapshot_interval = k;
    cfg2.write_initial_snapshot = false;  // step k snapshot already exists
    drive(fs, cfg2, true, &resumed);
  }
  EXPECT_EQ(reference, resumed) << "restart diverged under " << mode;
}

INSTANTIATE_TEST_SUITE_P(IoModes, GenxRestartTest,
                         ::testing::Values("rochdf", "t-rochdf", "rocpanda"));

TEST(Genx, RestartWithDifferentClientCount) {
  // Written by 3 clients through Rocpanda with 1 server; restarted by 2
  // clients with 2 servers.
  vfs::MemFileSystem fs;
  uint64_t reference = 0;
  with_rocpanda(3, 1, fs,
                [&](comm::Comm& clients, comm::Env& env,
                    roccom::IoService& io) {
                  GenxConfig cfg = small_config("mix");
                  cfg.steps = 10;
                  cfg.snapshot_interval = 10;
                  GenxRun run(clients, env, io, cfg);
                  run.init_fresh();
                  run.run();
                  const uint64_t s = run.global_state_checksum();  // collective
                  if (clients.rank() == 0) reference = s;
                });
  uint64_t restored = 0;
  with_rocpanda(2, 2, fs,
                [&](comm::Comm& clients, comm::Env& env,
                    roccom::IoService& io) {
                  GenxConfig cfg = small_config("mix");
                  cfg.steps = 0;
                  cfg.snapshot_interval = 0;
                  GenxRun run(clients, env, io, cfg);
                  run.init_restart("mix_snap_000010");
                  const uint64_t s = run.global_state_checksum();  // collective
                  if (clients.rank() == 0) restored = s;
                });
  EXPECT_EQ(reference, restored);
}

TEST(Genx, CrossModuleRestartBothDirections) {
  // The services' checkpoints are interchangeable: a T-Rochdf snapshot
  // restarts under Rocpanda and vice versa, landing on the same state as
  // the uninterrupted reference run.
  const int k = 8;
  auto reference = [&] {
    vfs::MemFileSystem fs;
    uint64_t sum = 0;
    with_rochdf(2, fs, false,
                [&](comm::Comm& clients, comm::Env& env,
                    roccom::IoService& io) {
                  GenxConfig cfg = small_config("xm");
                  cfg.steps = 2 * k;
                  cfg.snapshot_interval = k;
                  GenxRun run(clients, env, io, cfg);
                  run.init_fresh();
                  run.run();
                  const uint64_t s = run.global_state_checksum();
                  if (clients.rank() == 0) sum = s;
                });
    return sum;
  }();

  // T-Rochdf writes, Rocpanda restarts.
  {
    vfs::MemFileSystem fs;
    with_rochdf(2, fs, true,
                [&](comm::Comm& clients, comm::Env& env,
                    roccom::IoService& io) {
                  GenxConfig cfg = small_config("xm");
                  cfg.steps = k;
                  cfg.snapshot_interval = k;
                  GenxRun run(clients, env, io, cfg);
                  run.init_fresh();
                  run.run();
                });
    uint64_t resumed = 0;
    with_rocpanda(3, 1, fs,
                  [&](comm::Comm& clients, comm::Env& env,
                      roccom::IoService& io) {
                    GenxConfig cfg = small_config("xm");
                    cfg.steps = k;
                    cfg.snapshot_interval = k;
                    cfg.write_initial_snapshot = false;
                    GenxRun run(clients, env, io, cfg);
                    run.init_restart("xm_snap_000008");
                    run.run();
                    const uint64_t s = run.global_state_checksum();
                    if (clients.rank() == 0) resumed = s;
                  });
    EXPECT_EQ(resumed, reference) << "T-Rochdf -> Rocpanda restart diverged";
  }

  // Rocpanda writes, Rochdf restarts.
  {
    vfs::MemFileSystem fs;
    with_rocpanda(3, 1, fs,
                  [&](comm::Comm& clients, comm::Env& env,
                      roccom::IoService& io) {
                    GenxConfig cfg = small_config("xm");
                    cfg.steps = k;
                    cfg.snapshot_interval = k;
                    GenxRun run(clients, env, io, cfg);
                    run.init_fresh();
                    run.run();
                  });
    uint64_t resumed = 0;
    with_rochdf(2, fs, false,
                [&](comm::Comm& clients, comm::Env& env,
                    roccom::IoService& io) {
                  GenxConfig cfg = small_config("xm");
                  cfg.steps = k;
                  cfg.snapshot_interval = k;
                  cfg.write_initial_snapshot = false;
                  GenxRun run(clients, env, io, cfg);
                  run.init_restart("xm_snap_000008");
                  run.run();
                  const uint64_t s = run.global_state_checksum();
                  if (clients.rank() == 0) resumed = s;
                });
    EXPECT_EQ(resumed, reference) << "Rocpanda -> Rochdf restart diverged";
  }
}

TEST(Genx, RestartFromMissingSnapshotFailsLoudly) {
  vfs::MemFileSystem fs;
  with_rochdf(1, fs, false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxConfig cfg = small_config("nosnap");
                GenxRun run(clients, env, io, cfg);
                EXPECT_THROW(run.init_restart("nosnap_snap_000010"),
                             InvalidArgument);
              });
}

TEST(Genx, AdaptiveRefinementGrowsBlockListAndKeepsSnapshotsReadable) {
  vfs::MemFileSystem fs;
  size_t blocks_before = 0, blocks_after = 0;
  with_rochdf(2, fs, false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxConfig cfg = small_config("ref5");
                cfg.refine_every = 5;
                cfg.steps = 20;
                cfg.snapshot_interval = 10;
                GenxRun run(clients, env, io, cfg);
                run.init_fresh();
                const size_t before = run.local_block_count();
                run.run();
                if (clients.rank() == 0) {
                  blocks_before = before;
                  blocks_after = run.local_block_count();
                }
              });
  EXPECT_GT(blocks_after, blocks_before)
      << "refinement should have split blocks";
  // The post-refinement snapshot is fully readable: every pane id in the
  // last snapshot resolves to a reconstructible block.
  for (const auto& path : fs.list("ref5_snap_000020_p")) {
    shdf::Reader r(fs, path);
    for (const char* win : {"fluid", "solid", "burn"})
      for (int id : roccom::pane_ids_in_file(r, win))
        EXPECT_NO_THROW((void)roccom::read_block(r, win, id));
  }
}

TEST(Genx, RebalancePreservesStateAndImprovesBalance) {
  // Dynamic load balancing (paper §4.1): migrating blocks between
  // processors changes nothing physical and must not disturb I/O.
  vfs::MemFileSystem fs;
  with_rochdf(3, fs, false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxConfig cfg = small_config("rb");
                cfg.refine_every = 4;  // splits create imbalance
                cfg.steps = 12;
                cfg.snapshot_interval = 0;
                GenxRun run(clients, env, io, cfg);
                run.init_fresh();
                run.run();

                const double before = run.load_imbalance();
                const uint64_t state = run.global_state_checksum();
                (void)run.rebalance();
                EXPECT_EQ(run.global_state_checksum(), state)
                    << "migration altered physical state";
                EXPECT_LE(run.load_imbalance(), before + 1e-12);

                // I/O still works on the migrated distribution with the
                // SAME calls (the paper's flexibility claim).
                io.write_attribute(run.com(),
                                   roccom::IoRequest{"fluid", "all",
                                                     "rb_after", 0.0});
                io.sync();
              });
  EXPECT_EQ(fs.list("rb_after_p").size(), 3u);
}

TEST(Genx, PeriodicRebalanceKeepsRunCorrect) {
  // Rebalancing mid-run must not break the time loop or snapshots.
  vfs::MemFileSystem fs;
  with_rochdf(2, fs, false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxConfig cfg = small_config("rb2");
                cfg.refine_every = 3;
                cfg.rebalance_every = 6;
                cfg.steps = 18;
                cfg.snapshot_interval = 9;
                GenxRun run(clients, env, io, cfg);
                run.init_fresh();
                run.run();
                EXPECT_EQ(run.current_step(), 18);
              });
  // The final snapshot is complete and readable.
  size_t blocks = 0;
  for (const auto& path : fs.list("rb2_snap_000018_p")) {
    shdf::Reader r(fs, path);
    for (const char* win : {"fluid", "solid", "burn"})
      blocks += roccom::pane_ids_in_file(r, win).size();
  }
  EXPECT_GT(blocks, 10u);
}

TEST(Genx, VisibleOutputTimeTrackedPerService) {
  vfs::MemFileSystem fs;
  with_rochdf(1, fs, false,
              [&](comm::Comm& clients, comm::Env& env,
                  roccom::IoService& io) {
                GenxRun run(clients, env, io, small_config("g6"));
                run.init_fresh();
                run.run();
                EXPECT_GT(run.stats().visible_output_seconds, 0.0);
                EXPECT_GT(run.stats().compute_seconds, 0.0);
              });
}

}  // namespace
}  // namespace roc::genx
