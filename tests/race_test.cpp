/// \file race_test.cpp
/// \brief Concurrency stress tests, written to be run under
/// ThreadSanitizer (-DROCPIO_SANITIZE=thread).  They pass under any build,
/// but their value is the interleavings they provoke: mailbox traffic from
/// many ranks at once, communicator splits racing with point-to-point
/// messages, T-Rochdf snapshot back-pressure with a concurrent stats()
/// reader, MemFileSystem directory churn, and the logger.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "check/alloc_hook.h"
#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "rochdf/rochdf.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/thread.h"
#include "vfs/async.h"
#include "vfs/vfs.h"

namespace roc {
namespace {

using comm::Comm;
using comm::World;
using roccom::IoRequest;
using roccom::Roccom;

// Deliberately small iteration counts: TSan serializes heavily and CI
// machines are slow; the interesting schedules appear within a few dozen
// rounds.
constexpr int kRounds = 40;

/// Every rank sends `kRounds` tagged messages to every other rank while
/// polling its own mailbox with iprobe and draining with recv.  Exercises
/// the mailbox mutex/condvar from all sides at once.
TEST(RaceTest, MailboxHammer) {
  World::run(4, [](Comm& comm) {
    const int n = comm.size();
    const int me = comm.rank();

    for (int round = 0; round < kRounds; ++round) {
      for (int dest = 0; dest < n; ++dest) {
        if (dest == me) continue;
        const int32_t payload = me * 1000 + round;
        comm.send(dest, /*tag=*/round % 3, &payload, sizeof payload);
      }
      // Drain n-1 messages for this round's tag, probing first so the
      // iprobe path (peek without dequeue) runs concurrently with senders.
      int got = 0;
      while (got < n - 1) {
        comm::Status st;
        if (comm.iprobe(comm::kAnySource, round % 3, &st)) {
          EXPECT_EQ(st.bytes, sizeof(int32_t));
        }
        auto m = comm.recv(comm::kAnySource, round % 3);
        int32_t v = 0;
        std::memcpy(&v, m.payload.data(), sizeof v);
        EXPECT_EQ(v % 1000, round);
        ++got;
      }
    }
  });
}

/// Repeatedly splits the world while traffic flows on the parent
/// communicator; envelopes for different communicators share the mailboxes,
/// so split's allgather/bcast runs through the same locks as the user sends.
TEST(RaceTest, SplitUnderLoad) {
  World::run(4, [](Comm& comm) {
    const int me = comm.rank();
    for (int round = 0; round < 8; ++round) {
      // A message on the parent comm that is *not* consumed until after the
      // split: it must sit in the mailbox without confusing the collective.
      const int32_t token = me + round * 100;
      comm.send((me + 1) % comm.size(), /*tag=*/77, &token, sizeof token);

      auto sub = comm.split(me % 2, /*key=*/-me);
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), comm.size() / 2);

      // Exchange inside the subcommunicator.
      const int32_t sv = me;
      sub->send((sub->rank() + 1) % sub->size(), 5, &sv, sizeof sv);
      auto sm = sub->recv(comm::kAnySource, 5);
      EXPECT_EQ(sm.payload.size(), sizeof(int32_t));

      auto m = comm.recv(comm::kAnySource, 77);
      int32_t v = 0;
      std::memcpy(&v, m.payload.data(), sizeof v);
      EXPECT_EQ(v / 100, round);
    }
  });
}

mesh::MeshBlock make_block(int id, int n) {
  auto b = mesh::MeshBlock::structured(id, {n, n, n});
  mesh::add_fluid_schema(b);
  auto& p = b.field("pressure");
  std::iota(p.data.begin(), p.data.end(), static_cast<double>(id));
  return b;
}

/// T-Rochdf with snapshots issued back-to-back and no intervening sync: the
/// producer thread runs into the one-snapshot-in-flight back-pressure
/// (stats().snapshot_waits) while the worker writes, and a third thread
/// polls stats() the whole time.  Under TSan this covers every
/// gate-guarded member of Rochdf from three threads at once.
TEST(RaceTest, OverlappingSnapshots) {
  vfs::MemFileSystem fs;
  constexpr int kSnapshots = 6;
  World::run(2, [&](Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b1 = make_block(comm.rank() * 2, 10);
    auto b2 = make_block(comm.rank() * 2 + 1, 10);
    w.register_pane(b1.id(), &b1);
    w.register_pane(b2.id(), &b2);

    rochdf::Options opts;
    opts.threaded = true;
    rochdf::Rochdf io(comm, env, fs, opts);

    std::atomic<bool> done{false};
    roc::Thread poller([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto s = io.stats();
        EXPECT_LE(s.blocks_written, s.write_calls * 2);
      }
    });

    for (int snap = 0; snap < kSnapshots; ++snap) {
      const std::string base = "snap_" + std::to_string(snap);
      io.write_attribute(com, IoRequest{"fluid", "all", base,
                                        static_cast<double>(snap)});
      // Mutate immediately: buffer-reuse safety means the worker must be
      // operating on its own deep copies.
      b1.field("pressure").data.assign(b1.field("pressure").data.size(),
                                       static_cast<double>(snap));
    }
    io.sync();
    done.store(true, std::memory_order_release);
    poller.join();

    const auto s = io.stats();
    EXPECT_EQ(s.write_calls, static_cast<uint64_t>(kSnapshots));
    EXPECT_EQ(s.blocks_written, static_cast<uint64_t>(kSnapshots) * 2);
    comm.barrier();
    if (comm.rank() == 0) {
      for (int snap = 0; snap < kSnapshots; ++snap)
        EXPECT_EQ(fs.list("snap_" + std::to_string(snap) + "_p").size(), 2u);
    }
  });
}

/// MemFileSystem namespace churn: threads create, write, list and remove
/// files under both shared and unique names.
TEST(RaceTest, MemFsChurn) {
  vfs::MemFileSystem fs;
  constexpr int kThreads = 4;
  std::vector<roc::Thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fs, t] {
      const std::string mine = "churn/worker" + std::to_string(t);
      std::vector<unsigned char> buf(512, static_cast<unsigned char>(t));
      for (int round = 0; round < kRounds; ++round) {
        {
          auto f = fs.open(mine, vfs::OpenMode::kTruncate);
          f->write(buf.data(), buf.size());
          f->flush();
        }
        EXPECT_TRUE(fs.exists(mine));
        {
          auto f = fs.open(mine, vfs::OpenMode::kRead);
          std::vector<unsigned char> back(buf.size());
          f->read(back.data(), back.size());
          EXPECT_EQ(back, buf);
        }
        // Directory-level operations race with other workers' open/remove.
        EXPECT_GE(fs.list("churn/").size(), 1u);
        (void)fs.total_bytes();
        fs.remove(mine);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fs.list("churn/").size(), 0u);
}

/// The logger serializes whole lines; hammer it from several threads.
/// Several threads acquire/seal/drop pooled buffers while others ship
/// sealed buffers across a ThreadComm world: the pool's free lists and the
/// cross-thread last-reference release (PooledRep destructor on the
/// receiver's thread) run concurrently.
TEST(RaceTest, BufferPoolChurn) {
  BufferPool pool(/*max_per_bucket=*/4);
  World::run(4, [&](Comm& comm) {
    const int me = comm.rank();
    const int peer = me ^ 1;  // 0<->1, 2<->3
    for (int round = 0; round < kRounds; ++round) {
      const size_t n = 512 + static_cast<size_t>((me * kRounds + round) % 4096);
      auto v = pool.acquire(n);
      std::memset(v.data(), me, v.size());
      SharedBuffer buf = pool.seal(std::move(v));
      comm.send(peer, 1, buf);
      buf = SharedBuffer();  // receiver may now hold the last reference
      auto m = comm.recv(peer, 1);
      EXPECT_EQ(m.payload.data()[0], static_cast<unsigned char>(peer));
    }  // message destruction returns storage to the pool from this thread
  });
  const auto st = pool.stats();
  EXPECT_GT(st.returns + st.discards, 0u);
}

/// Sharded counters, a peak gauge and a histogram hammered from four
/// threads while a fifth continuously snapshots the registry (value(),
/// to_text(), snapshot()).  Under TSan this covers the per-shard atomics,
/// the CAS-max loop and the registry mutex from every side; the final
/// totals check that no increment was lost.
TEST(RaceTest, MetricsHammer) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("race.increments");
  telemetry::Gauge& g = reg.gauge("race.peak");
  telemetry::Histogram& h = reg.histogram("race.values_seconds");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;

  std::atomic<bool> done{false};
  roc::Thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_LE(c.value(), kThreads * kPerThread);
      EXPECT_LE(h.snapshot().count, kThreads * kPerThread);
      (void)reg.to_text();
    }
  });

  std::vector<roc::Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.increment();
        g.record_peak(static_cast<std::int64_t>(t * kPerThread + i));
        h.observe(static_cast<double>(i) * 1e-6);
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kThreads * kPerThread) - 1);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
}

/// Spans and instants recorded from several threads while a collector
/// drains the rings and tracing is toggled mid-flight: the ring mutexes,
/// the buffer-list registration and the enable flag all race.
TEST(RaceTest, TraceRingHammer) {
  (void)telemetry::collect_trace();  // drop anything from earlier tests
  telemetry::set_trace_enabled(true);
  std::atomic<bool> done{false};
  std::uint64_t collected = 0;
  roc::Thread collector([&] {
    while (!done.load(std::memory_order_acquire))
      collected += telemetry::collect_trace().events.size();
  });

  std::vector<roc::Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      telemetry::set_thread_name("hammer " + std::to_string(t));
      for (int i = 0; i < kRounds; ++i) {
        ROC_TRACE_SPAN("race", "span");
        ROC_TRACE_INSTANT_D("race", "tick", std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  collector.join();
  collected += telemetry::collect_trace().events.size();
  telemetry::set_trace_enabled(false);
#if defined(ROCPIO_TELEMETRY_DISABLED)
  EXPECT_EQ(collected, 0u);  // macros compile away entirely
#else
  // Rings are far larger than 4*2*kRounds events: nothing may be dropped.
  EXPECT_EQ(collected, 4u * 2u * kRounds);
#endif
}

/// Four producers share ONE async engine: each submits `kRounds` writes to
/// its own disjoint stripe of a mutex-guarded memory target while reaping
/// whatever completions are available, then the main thread drains.  This
/// hammers the submission deque, the backpressure condvar and the
/// completion ring from every side at once (production uses one ring per
/// file, but the engines promise thread safety and TSan holds them to it).
TEST(RaceTest, CompletionRingHammer) {
  class StripedTarget final : public vfs::IoTarget {
   public:
    explicit StripedTarget(size_t n) : bytes_(n, 0) {}
    int64_t pwrite(const void* data, size_t n, uint64_t offset,
                   bool /*direct*/) noexcept override {
      MutexLock lock(mu_);
      std::memcpy(bytes_.data() + offset, data, n);
      return static_cast<int64_t>(n);
    }
    void read_at(void*, size_t, uint64_t) override {}
    uint64_t size() override { return 0; }
    void flush() override {}
    [[nodiscard]] unsigned char at(size_t i) {
      MutexLock lock(mu_);
      return bytes_[i];
    }

   private:
    Mutex mu_{"striped_target"};
    std::vector<unsigned char> bytes_ ROC_GUARDED_BY(mu_);
  };

  constexpr int kThreads = 4;
  constexpr size_t kChunk = 64;
  telemetry::MetricsRegistry reg;
  auto engine = vfs::make_thread_pool_engine(/*queue_depth=*/8, /*workers=*/2,
                                             vfs::AsyncMetrics(reg));
  StripedTarget target(kThreads * static_cast<size_t>(kRounds) * kChunk);
  std::atomic<size_t> reaped{0};
  {
    std::vector<roc::Thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Pinned, not stack-owned: the producer thread may exit while its
        // last submissions are still executing on the workers.
        SharedBuffer payload = SharedBuffer::adopt(std::vector<unsigned char>(
            kChunk, static_cast<unsigned char>(t + 1)));
        std::vector<vfs::Cqe> cq;
        for (int i = 0; i < kRounds; ++i) {
          vfs::Sqe s;
          s.id = static_cast<uint64_t>(t) * 100000 + static_cast<uint64_t>(i);
          s.target = &target;
          s.offset = (static_cast<uint64_t>(t) * kRounds +
                      static_cast<uint64_t>(i)) *
                     kChunk;
          s.pin = payload;
          s.data = payload.data();
          s.len = kChunk;
          engine->submit(std::move(s));
          cq.clear();
          engine->reap(&cq);  // racing reapers: completions must not dup
          for (const vfs::Cqe& c : cq) EXPECT_EQ(c.result, (int64_t)kChunk);
          reaped.fetch_add(cq.size(), std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  engine->drain();
  std::vector<vfs::Cqe> tail;
  engine->reap(&tail);
  reaped.fetch_add(tail.size(), std::memory_order_relaxed);
  EXPECT_EQ(reaped.load(), static_cast<size_t>(kThreads) * kRounds);
  EXPECT_EQ(reg.counter("vfs.async.completions").value(),
            static_cast<uint64_t>(kThreads) * kRounds);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(target.at(static_cast<size_t>(t) * kRounds * kChunk),
              static_cast<unsigned char>(t + 1));
}

/// Four threads write flight-recorder events (spans and raw records) while
/// a dumper repeatedly serializes every ring and tracing stays off: the
/// all-atomic rings promise that writers never block and that a reader
/// overlapping a wrapping writer reads torn-but-individually-consistent
/// words.  TSan holds the relaxed-atomic design to that.
TEST(RaceTest, FlightRingHammer) {
  namespace flight = telemetry::flight;
  const std::string path =
      testing::TempDir() + "/race_flight_hammer.json";
  flight::set_enabled(true);
  [[maybe_unused]] const std::uint64_t before = flight::events_recorded();

  std::atomic<bool> done{false};
  roc::Thread dumper([&] {
    while (!done.load(std::memory_order_acquire))
      (void)flight::dump_now("hammer", path.c_str());
  });

  std::vector<roc::Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      flight::set_thread_name(("flight " + std::to_string(t)).c_str());
      for (int i = 0; i < kRounds; ++i) {
        // One begin/end pair per span plus one raw instant: 3 events.
        telemetry::Span span("race", "flight.span");
        flight::record(flight::EventKind::kInstant, "race", "flight.tick",
                       telemetry::now(), 0,
                       std::to_string(i).c_str());
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  dumper.join();

  flight::set_enabled(false);
#if defined(ROCPIO_TELEMETRY_DISABLED)
  EXPECT_EQ(flight::events_recorded(), 0u);
#else
  EXPECT_GE(flight::events_recorded() - before, 4u * 3u * kRounds);
  EXPECT_TRUE(flight::dump_now("final", path.c_str()));
#endif
  std::remove(path.c_str());
}

#if defined(ROCPIO_CHECK)
/// The allocation interposer under concurrency: per-thread counters must
/// be exact with siblings allocating at full tilt (they are thread-local
/// by design -- TSan verifies no shared mutable state backs them), scope
/// tokens must nest per thread, and the process totals must observe every
/// allocation exactly once.
TEST(RaceTest, AllocCounterHammer) {
  constexpr int kThreads = 4;
  constexpr int kAllocs = 64;
  const std::uint64_t total0 = check::total_allocs();
  std::atomic<int> exact{0};
  std::atomic<std::uint64_t> charged_sum{0};
  {
    std::vector<roc::Thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        void* tok = check::alloc_scope_enter("RaceTest::AllocCounterHammer");
        const std::uint64_t a0 = check::thread_allocs();
        const std::uint64_t c0 = check::thread_charged_allocs();
        for (int i = 0; i < kAllocs; ++i) {
          auto* p = new int(t + i);
          asm volatile("" : : "g"(p) : "memory");
          delete p;
        }
        const bool ok = check::thread_allocs() - a0 == kAllocs &&
                        check::thread_frees() >= kAllocs;
        charged_sum.fetch_add(check::thread_charged_allocs() - c0,
                              std::memory_order_relaxed);
        check::alloc_scope_exit(tok);
        exact.fetch_add(ok ? 1 : 0, std::memory_order_relaxed);
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(exact.load(), kThreads);
  // Every hammer allocation is unsanctioned (no exempt bracket).
  EXPECT_EQ(charged_sum.load(), std::uint64_t{kThreads} * kAllocs);
  EXPECT_GE(check::total_allocs() - total0,
            std::uint64_t{kThreads} * kAllocs);
}
#endif  // ROCPIO_CHECK

TEST(RaceTest, LoggerHammer) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);  // exercise the lock, not stderr
  std::vector<roc::Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kRounds; ++i)
        log_line(LogLevel::kDebug,
                 "race " + std::to_string(t) + ":" + std::to_string(i));
    });
  }
  for (auto& t : threads) t.join();
  set_log_level(before);
}

}  // namespace
}  // namespace roc
