/// \file vfs_test.cpp
/// \brief Unit tests for the virtual file system (Posix and in-memory).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include "util/thread.h"
#include "vfs/async.h"
#include "vfs/vfs.h"

namespace roc::vfs {
namespace {

/// Parameterized over every implementation — including the async decorator
/// in its real-engine and sync-shim configurations: they must all behave
/// identically through the File/FileSystem contract.
class FileSystemTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const std::string param = GetParam();
    if (param != "mem" && param != "async-mem") {
      root_ = std::filesystem::temp_directory_path() /
              ("rocpio_vfs_test_" + std::to_string(::getpid()));
      base_ = std::make_unique<PosixFileSystem>(root_.string());
    } else {
      base_ = std::make_unique<MemFileSystem>();
    }
    if (param == "posix" || param == "mem") {
      fs_ = std::move(base_);
      return;
    }
    AsyncOptions opts;
    if (param == "async-sync") opts.backend = AsyncBackend::kSync;
    if (param == "async-threads") opts.backend = AsyncBackend::kThreadPool;
    if (param == "async-uncoalesced") opts.coalesce_bytes = 0;
    if (param == "async-direct") opts.direct_io = true;
    fs_ = std::make_unique<AsyncFileSystem>(*base_, opts);
  }
  void TearDown() override {
    fs_.reset();
    base_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  std::unique_ptr<FileSystem> base_;  ///< wrapped base for async variants
  std::unique_ptr<FileSystem> fs_;
  std::filesystem::path root_;
};

TEST_P(FileSystemTest, WriteThenReadBack) {
  auto f = fs_->open("a.bin", OpenMode::kTruncate);
  const std::string data = "hello, file system";
  f->write(data.data(), data.size());
  EXPECT_EQ(f->size(), data.size());
  f.reset();

  auto g = fs_->open("a.bin", OpenMode::kRead);
  std::string back(data.size(), '\0');
  g->read(back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST_P(FileSystemTest, SeekAndOverwrite) {
  auto f = fs_->open("b.bin", OpenMode::kTruncate);
  f->write("AAAAAAAA", 8);
  f->seek(2);
  f->write("xx", 2);
  EXPECT_EQ(f->tell(), 4u);
  f->seek(0);
  std::string s(8, '\0');
  f->read(s.data(), 8);
  EXPECT_EQ(s, "AAxxAAAA");
}

TEST_P(FileSystemTest, OpenMissingFileThrows) {
  EXPECT_THROW((void)fs_->open("missing.bin", OpenMode::kRead), IoError);
  EXPECT_THROW((void)fs_->open("missing.bin", OpenMode::kReadWrite), IoError);
}

TEST_P(FileSystemTest, ShortReadThrows) {
  auto f = fs_->open("c.bin", OpenMode::kTruncate);
  f->write("123", 3);
  f->seek(0);
  char buf[10];
  EXPECT_THROW(f->read(buf, 10), IoError);
}

TEST_P(FileSystemTest, TruncateClearsOldContent) {
  {
    auto f = fs_->open("d.bin", OpenMode::kTruncate);
    f->write("old content", 11);
  }
  {
    auto f = fs_->open("d.bin", OpenMode::kTruncate);
    EXPECT_EQ(f->size(), 0u);
  }
}

TEST_P(FileSystemTest, ExistsAndRemove) {
  EXPECT_FALSE(fs_->exists("e.bin"));
  { (void)fs_->open("e.bin", OpenMode::kTruncate); }
  EXPECT_TRUE(fs_->exists("e.bin"));
  fs_->remove("e.bin");
  EXPECT_FALSE(fs_->exists("e.bin"));
  EXPECT_NO_THROW(fs_->remove("e.bin"));  // idempotent
}

TEST_P(FileSystemTest, ListByPrefixSorted) {
  for (const char* name : {"snap_01_p2", "snap_01_p0", "snap_01_p1", "other"})
    (void)fs_->open(name, OpenMode::kTruncate);
  const auto files = fs_->list("snap_01_p");
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "snap_01_p0");
  EXPECT_EQ(files[1], "snap_01_p1");
  EXPECT_EQ(files[2], "snap_01_p2");
}

TEST_P(FileSystemTest, ReadWriteModePreservesContent) {
  {
    auto f = fs_->open("f.bin", OpenMode::kTruncate);
    f->write("0123456789", 10);
  }
  {
    auto f = fs_->open("f.bin", OpenMode::kReadWrite);
    EXPECT_EQ(f->size(), 10u);
    f->seek(10);
    f->write("abc", 3);
  }
  auto f = fs_->open("f.bin", OpenMode::kRead);
  EXPECT_EQ(f->size(), 13u);
}

TEST_P(FileSystemTest, ZeroByteOperationsAreNoOps) {
  auto f = fs_->open("g.bin", OpenMode::kTruncate);
  f->write(nullptr, 0);
  EXPECT_EQ(f->size(), 0u);
  f->read(nullptr, 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, FileSystemTest,
                         ::testing::Values("posix", "mem", "async-auto",
                                           "async-sync", "async-threads",
                                           "async-uncoalesced", "async-direct",
                                           "async-mem"));

TEST(MemFileSystem, SharedStoreAcrossCopies) {
  MemFileSystem a;
  MemFileSystem b = a;  // same store
  { (void)a.open("x", OpenMode::kTruncate); }
  EXPECT_TRUE(b.exists("x"));
}

TEST(MemFileSystem, CountersTrackContent) {
  MemFileSystem fs;
  EXPECT_EQ(fs.file_count(), 0u);
  {
    auto f = fs.open("x", OpenMode::kTruncate);
    f->write("12345", 5);
  }
  EXPECT_EQ(fs.file_count(), 1u);
  EXPECT_EQ(fs.total_bytes(), 5u);
}

TEST(MemFileSystem, ConcurrentDistinctFiles) {
  // Many threads write distinct files concurrently; the directory map must
  // stay consistent.
  MemFileSystem fs;
  std::vector<roc::Thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fs, t] {
      for (int i = 0; i < 50; ++i) {
        // Name assembled piecewise: `"lit" + std::to_string(...)` trips
        // GCC 12's bogus -Wrestrict at -O3 (PR105651).
        std::string name = "t";
        name += std::to_string(t);
        name += '_';
        name += std::to_string(i);
        auto f = fs.open(name, OpenMode::kTruncate);
        const int v = t * 1000 + i;
        f->write(&v, sizeof(v));
      }
    });
  }
  threads.clear();  // joins
  EXPECT_EQ(fs.file_count(), 400u);
}

}  // namespace
}  // namespace roc::vfs
