/// \file roccom_test.cpp
/// \brief Tests for the Roccom framework: windows, panes, schema
/// validation, function registration/invocation, I/O module loading and
/// the block <-> SHDF dataset layout contract.

#include <gtest/gtest.h>

#include "comm/env.h"
#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "roccom/blockio.h"
#include "roccom/io_service.h"
#include "roccom/roccom.h"
#include "rochdf/rochdf.h"
#include "shdf/reader.h"
#include "shdf/writer.h"
#include "vfs/vfs.h"

namespace roc::roccom {
namespace {

mesh::MeshBlock make_fluid_block(int id) {
  auto b = mesh::MeshBlock::structured(id, {4, 4, 4});
  mesh::add_fluid_schema(b);
  for (size_t i = 0; i < b.coords().size(); ++i)
    b.coords()[i] = 0.5 * static_cast<double>(i + id);
  auto& p = b.field("pressure");
  for (size_t i = 0; i < p.data.size(); ++i)
    p.data[i] = static_cast<double>(id * 1000 + static_cast<int>(i));
  return b;
}

TEST(Window, CreateDeleteAndLookup) {
  Roccom com;
  com.create_window("fluid");
  EXPECT_TRUE(com.has_window("fluid"));
  EXPECT_THROW(com.create_window("fluid"), RegistryError);
  EXPECT_THROW(com.create_window("bad.name"), RegistryError);
  EXPECT_THROW(com.create_window(""), RegistryError);
  EXPECT_THROW((void)com.window("nope"), RegistryError);
  com.delete_window("fluid");
  EXPECT_FALSE(com.has_window("fluid"));
  EXPECT_THROW(com.delete_window("fluid"), RegistryError);
}

TEST(Window, SchemaValidationOnPaneRegistration) {
  Roccom com;
  Window& w = com.create_window("fluid");
  w.declare_field({"velocity", mesh::Centering::kNode, 3});
  w.declare_field({"pressure", mesh::Centering::kElement, 1});
  EXPECT_THROW(w.declare_field({"velocity", mesh::Centering::kNode, 3}),
               RegistryError);

  auto good = make_fluid_block(0);
  w.register_pane(0, &good);

  // Schema frozen once panes exist.
  EXPECT_THROW(w.declare_field({"late", mesh::Centering::kNode, 1}),
               RegistryError);

  // Missing field.
  auto bare = mesh::MeshBlock::structured(1, {3, 3, 3});
  EXPECT_THROW(w.register_pane(1, &bare), RegistryError);

  // Wrong component count.
  auto wrong = mesh::MeshBlock::structured(2, {3, 3, 3});
  wrong.add_field("velocity", mesh::Centering::kNode, 2);
  wrong.add_field("pressure", mesh::Centering::kElement, 1);
  EXPECT_THROW(w.register_pane(2, &wrong), RegistryError);

  // Wrong centering.
  auto wrong2 = mesh::MeshBlock::structured(3, {3, 3, 3});
  wrong2.add_field("velocity", mesh::Centering::kElement, 3);
  wrong2.add_field("pressure", mesh::Centering::kElement, 1);
  EXPECT_THROW(w.register_pane(3, &wrong2), RegistryError);
}

TEST(Window, PanesVaryInSizeUnderOneSchema) {
  // The paper: all panes share the schema but sizes differ per pane.
  Roccom com;
  Window& w = com.create_window("fluid");
  w.declare_field({"pressure", mesh::Centering::kElement, 1});

  auto small = mesh::MeshBlock::structured(1, {3, 3, 3});
  small.add_field("pressure", mesh::Centering::kElement, 1);
  auto large = mesh::MeshBlock::structured(2, {9, 9, 9});
  large.add_field("pressure", mesh::Centering::kElement, 1);
  w.register_pane(1, &small);
  w.register_pane(2, &large);
  EXPECT_EQ(w.pane_count(), 2u);
  EXPECT_NE(w.pane(1).block->payload_bytes(),
            w.pane(2).block->payload_bytes());
}

TEST(Window, PaneLifecycle) {
  Roccom com;
  Window& w = com.create_window("win");
  auto b1 = make_fluid_block(1);
  auto b2 = make_fluid_block(2);
  w.register_pane(1, &b1);
  w.register_pane(2, &b2);
  EXPECT_THROW(w.register_pane(1, &b2), RegistryError);
  EXPECT_THROW(w.register_pane(3, nullptr), RegistryError);

  auto panes = w.panes();
  ASSERT_EQ(panes.size(), 2u);
  EXPECT_EQ(panes[0]->id, 1);  // pane-id order
  EXPECT_EQ(panes[1]->id, 2);

  w.remove_pane(1);
  EXPECT_FALSE(w.has_pane(1));
  EXPECT_THROW(w.remove_pane(1), RegistryError);
  w.clear_panes();
  EXPECT_EQ(w.pane_count(), 0u);
}

TEST(Functions, RegistrationAndQualifiedCall) {
  Roccom com;
  Window& w = com.create_window("solver");
  int calls = 0;
  double got = 0;
  w.register_function("step", [&](std::span<const Arg> args) {
    ++calls;
    if (!args.empty()) got = std::get<double>(args[0]);
  });
  com.call_function("solver.step");
  com.call_function("solver.step", {Arg(2.5)});
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(got, 2.5);

  EXPECT_THROW(com.call_function("solver.missing"), RegistryError);
  EXPECT_THROW(com.call_function("nope.step"), RegistryError);
  EXPECT_THROW(com.call_function("malformed"), RegistryError);
  EXPECT_THROW(com.call_function("solver."), RegistryError);
  EXPECT_THROW(w.register_function("step", [](std::span<const Arg>) {}),
               RegistryError);
  EXPECT_THROW(w.register_function("empty", Function{}), RegistryError);
}

TEST(Functions, HeterogeneousArgPack) {
  Roccom com;
  Window& w = com.create_window("w");
  w.register_function("f", [](std::span<const Arg> args) {
    EXPECT_EQ(std::get<int64_t>(args[0]), 42);
    EXPECT_DOUBLE_EQ(std::get<double>(args[1]), 1.5);
    EXPECT_EQ(std::get<std::string>(args[2]), "str");
  });
  com.call_function("w.f", {Arg(int64_t{42}), Arg(1.5), Arg(std::string("str"))});
}

TEST(IoModule, LoadRegistersVerbsAndUnloadRemovesWindow) {
  // Any service works; Rochdf is the simplest.
  vfs::MemFileSystem fs;
  comm::RealEnv env;
  comm::World::run(1, [&](comm::Comm& comm) {
    Roccom com;
    Window& w = com.create_window("fluid");
    w.declare_field({"pressure", mesh::Centering::kElement, 1});
    auto b = make_fluid_block(0);
    com.window("fluid").register_pane(0, &b);

    {
      IoModuleHandle handle(
          com, "RIO",
          std::make_unique<rochdf::Rochdf>(comm, env, fs, rochdf::Options{}));
      EXPECT_TRUE(com.has_window("RIO"));
      EXPECT_TRUE(com.window("RIO").has_function("write_attribute"));
      EXPECT_TRUE(com.window("RIO").has_function("read_attribute"));
      EXPECT_TRUE(com.window("RIO").has_function("sync"));

      IoRequest req{"fluid", "all", "snap_000", 0.5};
      com_write_attribute(com, "RIO", req);
      com_sync(com, "RIO");
      EXPECT_TRUE(fs.exists("snap_000_p0000.shdf"));

      // Mutate and restore through the verbs.
      const auto original = b.field("pressure").data;
      b.field("pressure").data.assign(b.field("pressure").data.size(), -1.0);
      com_read_attribute(com, "RIO", req);
      EXPECT_EQ(b.field("pressure").data, original);
    }
    EXPECT_FALSE(com.has_window("RIO"));  // handle unloads on destruction
  });
}

TEST(IoModule, SwitchingModulesKeepsApplicationCodeUnchanged) {
  // The application only knows the window name "RIO"; loading a different
  // module swaps the I/O strategy (paper §5).
  vfs::MemFileSystem fs;
  comm::RealEnv env;
  comm::World::run(1, [&](comm::Comm& comm) {
    Roccom com;
    Window& w = com.create_window("fluid");
    w.declare_field({"pressure", mesh::Centering::kElement, 1});
    auto b = make_fluid_block(0);
    w.register_pane(0, &b);

    auto app_writes_snapshot = [&](const std::string& file) {
      IoRequest req{"fluid", "all", file, 0.0};
      com_write_attribute(com, "RIO", req);
      com_sync(com, "RIO");
    };

    {
      rochdf::Options plain;
      IoModuleHandle h(com, "RIO", std::make_unique<rochdf::Rochdf>(
                                        comm, env, fs, plain));
      app_writes_snapshot("snap_a");
    }
    {
      rochdf::Options threaded;
      threaded.threaded = true;
      IoModuleHandle h(com, "RIO", std::make_unique<rochdf::Rochdf>(
                                        comm, env, fs, threaded));
      app_writes_snapshot("snap_b");
    }
    EXPECT_TRUE(fs.exists("snap_a_p0000.shdf"));
    EXPECT_TRUE(fs.exists("snap_b_p0000.shdf"));
  });
}

// --- blockio layout contract -------------------------------------------------

TEST(BlockIo, DatasetNamingConvention) {
  EXPECT_EQ(block_prefix("fluid", 7), "fluid/block_000007/");
  EXPECT_EQ(block_prefix("solid", 123456), "solid/block_123456/");
}

TEST(BlockIo, StructuredBlockRoundTrip) {
  vfs::MemFileSystem fs;
  auto b = make_fluid_block(3);
  {
    shdf::Writer w(fs, "f.shdf");
    write_block(w, "fluid", b, "all", 1.25);
  }
  shdf::Reader r(fs, "f.shdf");
  EXPECT_EQ(pane_ids_in_file(r, "fluid"), std::vector<int>{3});
  EXPECT_DOUBLE_EQ(block_time(r, "fluid", 3), 1.25);

  const auto c = read_block(r, "fluid", 3);
  EXPECT_EQ(c.state_checksum(), b.state_checksum());
}

TEST(BlockIo, UnstructuredBlockRoundTrip) {
  vfs::MemFileSystem fs;
  mesh::LabScaleSpec spec;
  spec.fluid_blocks = 1;
  spec.solid_blocks = 1;
  auto mesh_obj = mesh::make_lab_scale_rocket(spec);
  const auto& b = mesh_obj.solid[0];
  {
    shdf::Writer w(fs, "s.shdf");
    write_block(w, "solid", b, "all", 0.0);
  }
  shdf::Reader r(fs, "s.shdf");
  const auto c = read_block(r, "solid", b.id());
  EXPECT_EQ(c.kind(), mesh::MeshKind::kUnstructured);
  EXPECT_EQ(c.connectivity(), b.connectivity());
  EXPECT_EQ(c.state_checksum(), b.state_checksum());
}

TEST(BlockIo, MeshOnlyAndSingleFieldSelectors) {
  vfs::MemFileSystem fs;
  auto b = make_fluid_block(1);
  {
    shdf::Writer w(fs, "sel.shdf");
    write_block(w, "fluid", b, "mesh", 0.0);
  }
  {
    shdf::Reader r(fs, "sel.shdf");
    EXPECT_TRUE(r.has_dataset("fluid/block_000001/coords"));
    EXPECT_FALSE(r.has_dataset("fluid/block_000001/field:pressure"));
  }
  {
    shdf::Writer w = shdf::Writer::append(fs, "sel.shdf");
    write_block(w, "fluid", b, "pressure", 0.0);
  }
  shdf::Reader r(fs, "sel.shdf");
  EXPECT_TRUE(r.has_dataset("fluid/block_000001/field:pressure"));
  EXPECT_FALSE(r.has_dataset("fluid/block_000001/field:velocity"));

  // read_into_block with a single-field selector only touches that field.
  auto c = make_fluid_block(1);
  c.field("pressure").data.assign(c.field("pressure").data.size(), 0.0);
  c.field("temperature").data.assign(c.field("temperature").data.size(), 7.0);
  read_into_block(r, "fluid", "pressure", c);
  EXPECT_EQ(c.field("pressure").data, b.field("pressure").data);
  EXPECT_EQ(c.field("temperature").data[0], 7.0);
}

TEST(BlockIo, MultipleBlocksAndWindowsInOneFile) {
  vfs::MemFileSystem fs;
  auto b1 = make_fluid_block(1);
  auto b2 = make_fluid_block(2);
  auto b9 = make_fluid_block(9);
  {
    shdf::Writer w(fs, "multi.shdf");
    write_block(w, "fluid", b2, "all", 0.0);
    write_block(w, "fluid", b1, "all", 0.0);
    write_block(w, "other", b9, "all", 0.0);
  }
  shdf::Reader r(fs, "multi.shdf");
  EXPECT_EQ(pane_ids_in_file(r, "fluid"), (std::vector<int>{1, 2}));
  EXPECT_EQ(pane_ids_in_file(r, "other"), (std::vector<int>{9}));
  EXPECT_EQ(pane_ids_in_file(r, "ghost"), std::vector<int>{});
}

TEST(BlockIo, ReadIntoBlockValidatesSizes) {
  vfs::MemFileSystem fs;
  auto b = make_fluid_block(1);
  {
    shdf::Writer w(fs, "v.shdf");
    write_block(w, "fluid", b, "all", 0.0);
  }
  shdf::Reader r(fs, "v.shdf");
  auto wrong = mesh::MeshBlock::structured(1, {5, 5, 5});
  mesh::add_fluid_schema(wrong);
  EXPECT_THROW(read_into_block(r, "fluid", "all", wrong), FormatError);
}

}  // namespace
}  // namespace roc::roccom
