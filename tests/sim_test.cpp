/// \file sim_test.cpp
/// \brief Tests for the discrete-event simulator: scheduling, virtual
/// time, determinism, the node/network/file-system cost models, and the
/// real I/O libraries running unmodified on the simulated substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mesh/generators.h"
#include "rochdf/rochdf.h"
#include "rocpanda/client.h"
#include "rocpanda/server.h"
#include "shdf/reader.h"
#include "sim/platform.h"
#include "sim/sim_comm.h"
#include "sim/sim_env.h"
#include "sim/sim_fs.h"
#include "sim/simulation.h"

namespace roc::sim {
namespace {

Platform quiet_platform(int cpus = 2) {
  Platform p;  // generic defaults, no noise, no interference
  p.node.cpus = cpus;
  return p;
}

TEST(Simulation, VirtualTimeAdvancesThroughEventsOnly) {
  Simulation sim(quiet_platform());
  double seen = -1;
  sim.add_process([&](ProcContext& ctx) {
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
    ctx.wait_until(1.5, false);
    EXPECT_DOUBLE_EQ(ctx.now(), 1.5);
    ctx.wait_until(1.5, false);  // no-op in time
    EXPECT_DOUBLE_EQ(ctx.now(), 1.5);
    seen = ctx.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Simulation, EventsRunInTimeOrderWithFifoTieBreak) {
  Simulation sim(quiet_platform());
  std::vector<int> order;
  sim.add_process([&](ProcContext& ctx) {
    ctx.sim().schedule(2.0, [&] { order.push_back(3); });
    ctx.sim().schedule(1.0, [&] { order.push_back(1); });
    ctx.sim().schedule(1.0, [&] { order.push_back(2); });  // same time: FIFO
    ctx.wait_until(3.0, false);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ComputeWithoutNoiseIsExact) {
  Simulation sim(quiet_platform());
  sim.add_process([&](ProcContext& ctx) {
    ctx.compute(2.25);
    EXPECT_DOUBLE_EQ(ctx.now(), 2.25);
  });
  sim.run();
}

TEST(Simulation, ProcessesArePackedOntoNodes) {
  Simulation sim(quiet_platform(/*cpus=*/4));
  for (int i = 0; i < 10; ++i) sim.add_process([](ProcContext&) {});
  EXPECT_EQ(sim.node_of_rank(0), 0);
  EXPECT_EQ(sim.node_of_rank(3), 0);
  EXPECT_EQ(sim.node_of_rank(4), 1);
  EXPECT_EQ(sim.node_of_rank(9), 2);
  sim.run();
}

TEST(Simulation, ExceptionInProcessPropagates) {
  Simulation sim(quiet_platform());
  sim.add_process([](ProcContext&) { throw IoError("sim process failed"); });
  EXPECT_THROW(sim.run(), IoError);
}

TEST(Simulation, DeadlockIsDetected) {
  Simulation sim(quiet_platform());
  auto world = std::make_shared<SimWorld>(sim, 1);
  sim.add_process([world](ProcContext&) {
    auto comm = world->attach();
    (void)comm->recv(0, 5);  // nobody will ever send
  });
  EXPECT_THROW(sim.run(), CommError);
}

TEST(Simulation, OsNoiseInflatesOnlyFullyBusyNodes) {
  // Two processes on one 2-CPU node: when both compute, no idle CPU
  // remains and noise inflates; a single computing process is exact.
  Platform p = quiet_platform(2);
  p.node.os_noise_fraction = 0.10;
  {
    Simulation sim(p);
    double t0 = -1;
    sim.add_process([&](ProcContext& ctx) {
      ctx.compute(10.0);
      t0 = ctx.now();
    });
    sim.run();
    EXPECT_DOUBLE_EQ(t0, 10.0);  // alone on the node: the other CPU absorbs
  }
  {
    Simulation sim(p);
    double t0 = -1, t1 = -1;
    sim.add_process([&](ProcContext& ctx) {
      ctx.compute(10.0);
      t0 = ctx.now();
    });
    sim.add_process([&](ProcContext& ctx) {
      ctx.compute(10.0);
      t1 = ctx.now();
    });
    sim.run();
    // At least one of the two overlapping computations saw no idle CPU.
    EXPECT_GT(std::max(t0, t1), 10.0);
    EXPECT_LT(std::max(t0, t1), 10.0 * 1.8);
  }
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Platform p = quiet_platform(2);
    p.node.os_noise_fraction = 0.05;
    Simulation sim(p);
    auto world = std::make_shared<SimWorld>(sim, 4);
    for (int r = 0; r < 4; ++r) {
      sim.add_process([world](ProcContext& ctx) {
        auto comm = world->attach();
        for (int step = 0; step < 5; ++step) {
          ctx.compute(0.1 * (comm->rank() + 1));
          comm->barrier();
        }
      });
    }
    sim.run();
    return sim.now();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

// --- SimComm semantics (mirrors the ThreadComm contract) ---------------------

TEST(SimComm, PingPongAndNonOvertaking) {
  Simulation sim(quiet_platform());
  auto world = std::make_shared<SimWorld>(sim, 2);
  for (int r = 0; r < 2; ++r) {
    sim.add_process([world](ProcContext&) {
      auto comm = world->attach();
      if (comm->rank() == 0) {
        for (int i = 0; i < 20; ++i) comm->send(1, 3, &i, sizeof(i));
      } else {
        for (int i = 0; i < 20; ++i) {
          auto m = comm->recv(0, 3);
          int v;
          std::memcpy(&v, m.payload.data(), sizeof(v));
          EXPECT_EQ(v, i);
        }
      }
    });
  }
  sim.run();
}

TEST(SimComm, SharedBufferSendEnqueuesReference) {
  // Zero-copy under the simulator too: the receiver sees the sender's
  // storage, while the modeled transfer still charges the full byte count.
  Simulation sim(quiet_platform());
  auto world = std::make_shared<SimWorld>(sim, 2);
  std::atomic<const unsigned char*> sent{nullptr};
  for (int r = 0; r < 2; ++r) {
    sim.add_process([world, &sent](ProcContext&) {
      auto comm = world->attach();
      if (comm->rank() == 0) {
        SharedBuffer buf = SharedBuffer::adopt({9, 8, 7});
        sent.store(buf.data());
        comm->send(1, 2, buf);
      } else {
        auto m = comm->recv(0, 2);
        EXPECT_EQ(m.payload.size(), 3u);
        EXPECT_EQ(m.payload.data(), sent.load());
      }
    });
  }
  sim.run();
}

TEST(SimComm, TransfersTakeTimeAndSerializeOnSharedLinks) {
  Platform p = quiet_platform(1);  // every rank on its own node
  p.net.inter_latency = 1e-3;
  p.net.inter_bandwidth = 1e6;  // 1 MB/s
  Simulation sim(p);
  auto world = std::make_shared<SimWorld>(sim, 3);
  std::vector<double> recv_time(3, -1);
  for (int r = 0; r < 3; ++r) {
    sim.add_process([world, &recv_time](ProcContext& ctx) {
      auto comm = world->attach();
      std::vector<unsigned char> mb(1000000);  // 1 MB -> 1 s on the wire
      if (comm->rank() != 0) {
        comm->send(0, 1, mb.data(), mb.size());
      } else {
        (void)comm->recv(comm::kAnySource, 1);
        (void)comm->recv(comm::kAnySource, 1);
        recv_time[0] = ctx.now();
      }
    });
  }
  sim.run();
  // Two 1s transfers must serialize at rank 0's NIC: ~2s total.
  EXPECT_GE(recv_time[0], 2.0);
  EXPECT_LT(recv_time[0], 2.2);
}

TEST(SimComm, IntraNodeCheaperThanInterNode) {
  Platform p = quiet_platform(2);
  p.net.intra_bandwidth = 100e6;
  p.net.inter_bandwidth = 10e6;
  auto elapsed_for = [&](int peer) {
    Simulation sim(p);
    auto world = std::make_shared<SimWorld>(sim, 4);
    // ranks 0,1 on node 0; 2,3 on node 1
    double done = -1;
    for (int r = 0; r < 4; ++r) {
      sim.add_process([world, peer, &done](ProcContext& ctx) {
        auto comm = world->attach();
        std::vector<unsigned char> mb(10000000);
        if (comm->rank() == 0) {
          comm->send(peer, 1, mb.data(), mb.size());
          done = ctx.now();
        } else if (comm->rank() == peer) {
          (void)comm->recv(0, 1);
        }
      });
    }
    sim.run();
    return done;
  };
  EXPECT_LT(elapsed_for(1), elapsed_for(2) / 2);
}

TEST(SimComm, CollectivesAndSplitWork) {
  Simulation sim(quiet_platform(4));
  auto world = std::make_shared<SimWorld>(sim, 6);
  for (int r = 0; r < 6; ++r) {
    sim.add_process([world](ProcContext&) {
      auto comm = world->attach();
      EXPECT_EQ(comm::allreduce_sum(*comm, comm->rank()), 15);
      auto sub = comm->split(comm->rank() % 2, comm->rank());
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), 3);
      EXPECT_EQ(comm::allreduce_sum(*sub, 1), 3);
      comm->barrier();
    });
  }
  sim.run();
}

// --- SimEnv -------------------------------------------------------------------

TEST(SimEnv, WorkerAndGateCooperate) {
  Simulation sim(quiet_platform());
  bool worker_ran = false;
  sim.add_process([&](ProcContext& ctx) {
    SimEnv env(ctx.sim());
    auto gate = env.make_gate();
    bool flag = false;
    auto worker = env.spawn_worker([&] {
      SimEnv wenv(sim);
      wenv.compute(0.5);
      comm::GateLock lock(*gate);
      flag = true;
      worker_ran = true;
      gate->notify_all();
    });
    gate->lock();
    while (!flag) gate->wait();
    gate->unlock();
    EXPECT_GE(ctx.now(), 0.5);
    worker->join();
  });
  sim.run();
  EXPECT_TRUE(worker_ran);
}

TEST(SimEnv, ChargeLocalCopyUsesMemcpyBandwidth) {
  Platform p = quiet_platform();
  p.memcpy_bandwidth = 100e6;
  Simulation sim(p);
  sim.add_process([&](ProcContext& ctx) {
    SimEnv env(ctx.sim());
    env.charge_local_copy(50'000'000);  // 0.5 s at 100 MB/s
    EXPECT_NEAR(ctx.now(), 0.5, 1e-9);
  });
  sim.run();
}

// --- SimFileSystem --------------------------------------------------------------

TEST(SimFs, WritesChargeOverheadPlusBandwidth) {
  Platform p = quiet_platform();
  p.fs.write_bandwidth = 10e6;
  p.fs.write_op_overhead = 1e-3;
  p.fs.open_cost = 0.5;
  p.fs.close_cost = 0;
  p.fs.cpu_fraction = 0;
  Simulation sim(p);
  sim.add_process([&](ProcContext& ctx) {
    SimFileSystem fs(ctx.sim());
    auto f = fs.open("x", vfs::OpenMode::kTruncate);
    EXPECT_NEAR(ctx.now(), 0.5, 1e-9);  // open cost
    std::vector<unsigned char> mb(10'000'000);
    f->write(mb.data(), mb.size());  // 1 s + 1 ms
    EXPECT_NEAR(ctx.now(), 1.501, 1e-6);
  });
  sim.run();
  // Content is really stored.
}

TEST(SimFs, DataSurvivesAndIsReadable) {
  Simulation sim(quiet_platform());
  sim.add_process([&](ProcContext& ctx) {
    SimFileSystem fs(ctx.sim());
    {
      shdf::Writer w(fs, "t.shdf");
      w.add("x", std::vector<double>{1, 2, 3});
    }
    shdf::Reader r(fs, "t.shdf");
    EXPECT_EQ(r.read<double>("x"), (std::vector<double>{1, 2, 3}));
    EXPECT_GT(ctx.now(), 0.0);  // the I/O cost virtual time
  });
  sim.run();
}

TEST(SimFs, WriteChannelsSerializeConcurrentWriters) {
  Platform p = quiet_platform(1);
  p.fs.write_channels = 1;
  p.fs.write_bandwidth = 1e6;
  p.fs.open_cost = 0;
  p.fs.close_cost = 0;
  p.fs.write_op_overhead = 0;
  p.fs.cpu_fraction = 0;
  Simulation sim(p);
  auto fs = std::make_shared<SimFileSystem>(sim);
  std::vector<double> done(3, 0);
  for (int r = 0; r < 3; ++r) {
    sim.add_process([fs, r, &done](ProcContext& ctx) {
      auto f = fs->open("f" + std::to_string(r), vfs::OpenMode::kTruncate);
      std::vector<unsigned char> mb(1'000'000);  // 1 s each
      f->write(mb.data(), mb.size());
      done[static_cast<size_t>(r)] = ctx.now();
    });
  }
  sim.run();
  EXPECT_NEAR(*std::max_element(done.begin(), done.end()), 3.0, 0.01);
}

TEST(SimFs, MoreChannelsGiveParallelism) {
  Platform p = quiet_platform(1);
  p.fs.write_channels = 3;
  p.fs.write_bandwidth = 1e6;
  p.fs.open_cost = 0;
  p.fs.close_cost = 0;
  p.fs.write_op_overhead = 0;
  p.fs.cpu_fraction = 0;
  Simulation sim(p);
  auto fs = std::make_shared<SimFileSystem>(sim);
  std::vector<double> done(3, 0);
  for (int r = 0; r < 3; ++r) {
    sim.add_process([fs, r, &done](ProcContext& ctx) {
      auto f = fs->open("f" + std::to_string(r), vfs::OpenMode::kTruncate);
      std::vector<unsigned char> mb(1'000'000);
      f->write(mb.data(), mb.size());
      done[static_cast<size_t>(r)] = ctx.now();
    });
  }
  sim.run();
  EXPECT_NEAR(*std::max_element(done.begin(), done.end()), 1.0, 0.01);
}

TEST(SimFs, ContentionMultiplierIsUnimodal) {
  Platform p = quiet_platform();
  p.fs.contention_a = 2.0;
  p.fs.contention_c0 = 16.0;
  // mult(c) = 1 + 2 c e^{-c/16}: rises to c=16 then falls.
  auto mult = [&](double c) { return 1 + 2 * c * std::exp(-c / 16.0); };
  EXPECT_LT(mult(4), mult(16));
  EXPECT_GT(mult(16), mult(64));
  EXPECT_GT(mult(64), 1.0);
}

// --- the real I/O stacks on the simulated substrate ---------------------------

TEST(SimIntegration, TRochdfRunsOnVirtualTime) {
  Platform p = quiet_platform(2);
  Simulation sim(p);
  auto fs = std::make_shared<SimFileSystem>(sim);
  auto world = std::make_shared<SimWorld>(sim, 2);
  std::vector<double> visible(2, 0);
  for (int r = 0; r < 2; ++r) {
    sim.add_process([world, fs, &visible](ProcContext& ctx) {
      auto comm = world->attach();
      SimEnv env(ctx.sim());
      roccom::Roccom com;
      auto& w = com.create_window("fluid");
      auto b = mesh::MeshBlock::structured(comm->rank(), {6, 6, 6});
      mesh::add_fluid_schema(b);
      w.register_pane(b.id(), &b);

      rochdf::Options o;
      o.threaded = true;
      rochdf::Rochdf io(*comm, env, *fs, o);
      const double t0 = ctx.now();
      io.write_attribute(com,
                         roccom::IoRequest{"fluid", "all", "vsnap", 0.0});
      visible[static_cast<size_t>(comm->rank())] = ctx.now() - t0;
      ctx.compute(5.0);  // overlap window
      io.sync();
      // The background write overlapped with compute: total stays ~5s.
      EXPECT_LT(ctx.now() - t0, 6.0);
    });
  }
  sim.run();
  // Visible cost is only the local buffer copy: far below the write cost.
  EXPECT_GT(visible[0], 0.0);
  EXPECT_LT(visible[0], 0.5);
}

TEST(SimIntegration, RocpandaDeploymentWritesAndRestartsUnderSim) {
  Platform p = quiet_platform(3);
  Simulation sim(p);
  auto fs = std::make_shared<SimFileSystem>(sim);
  const int nclients = 4, nservers = 2;
  auto world = std::make_shared<SimWorld>(sim, nclients + nservers);
  std::vector<double> visible(static_cast<size_t>(nclients + nservers), -1);

  for (int r = 0; r < nclients + nservers; ++r) {
    sim.add_process([world, fs, &visible](ProcContext& ctx) {
      auto comm = world->attach();
      SimEnv env(ctx.sim());
      const rocpanda::Layout layout(comm->size(), 2);
      const bool server = layout.is_server(comm->rank());
      auto local = comm->split(server ? 1 : 0, comm->rank());
      if (server) {
        (void)rocpanda::run_server(*comm, *local, env, *fs, layout,
                                   rocpanda::ServerOptions{});
        return;
      }
      roccom::Roccom com;
      auto& w = com.create_window("fluid");
      auto b = mesh::MeshBlock::structured(local->rank(), {6, 6, 6});
      mesh::add_fluid_schema(b);
      auto& pr = b.field("pressure");
      std::iota(pr.data.begin(), pr.data.end(),
                static_cast<double>(local->rank()) * 100);
      w.register_pane(b.id(), &b);
      const auto crc = b.state_checksum();

      rocpanda::RocpandaClient panda(*comm, env, layout);
      const double t0 = ctx.now();
      panda.write_attribute(com,
                            roccom::IoRequest{"fluid", "all", "sim_rt", 0.0});
      visible[static_cast<size_t>(comm->rank())] = ctx.now() - t0;
      ctx.compute(2.0);
      panda.sync();

      const auto back = panda.fetch_blocks("sim_rt", {local->rank()});
      EXPECT_EQ(back[0].state_checksum(), crc);
      panda.shutdown();
    });
  }
  sim.run();
  EXPECT_EQ(fs->list("sim_rt_s").size(), 2u);
  for (size_t r = 0; r < visible.size(); ++r) {
    const rocpanda::Layout layout(nclients + nservers, 2);
    if (layout.is_server(static_cast<int>(r))) continue;
    EXPECT_GT(visible[r], 0.0) << "client " << r;
  }
}

TEST(SimIntegration, ActiveBufferingHidesDiskTimeFromClients) {
  // Same deployment, slow disk: client-visible time must be much smaller
  // than the actual disk time; sync at the end pays the remainder.
  Platform p = quiet_platform(3);
  p.fs.write_bandwidth = 2e6;  // very slow disk
  p.net.intra_bandwidth = 500e6;
  p.net.inter_bandwidth = 500e6;
  Simulation sim(p);
  auto fs = std::make_shared<SimFileSystem>(sim);
  auto world = std::make_shared<SimWorld>(sim, 3);
  double visible = -1, total = -1;
  for (int r = 0; r < 3; ++r) {
    sim.add_process([world, fs, &visible, &total](ProcContext& ctx) {
      auto comm = world->attach();
      SimEnv env(ctx.sim());
      const rocpanda::Layout layout(3, 1);
      auto local = comm->split(layout.is_server(comm->rank()) ? 1 : 0,
                               comm->rank());
      if (layout.is_server(comm->rank())) {
        (void)rocpanda::run_server(*comm, *local, env, *fs, layout,
                                   rocpanda::ServerOptions{});
        return;
      }
      roccom::Roccom com;
      auto& w = com.create_window("fluid");
      auto b = mesh::MeshBlock::structured(local->rank(), {12, 12, 12});
      mesh::add_fluid_schema(b);
      w.register_pane(b.id(), &b);
      rocpanda::RocpandaClient panda(*comm, env, layout);

      const double t0 = ctx.now();
      panda.write_attribute(com,
                            roccom::IoRequest{"fluid", "all", "hide", 0.0});
      visible = ctx.now() - t0;
      panda.sync();
      total = ctx.now() - t0;
      panda.shutdown();
    });
  }
  sim.run();
  EXPECT_GT(total, visible * 3)
      << "the disk time should be hidden behind the buffering ack";
}

}  // namespace
}  // namespace roc::sim
