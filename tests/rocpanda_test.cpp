/// \file rocpanda_test.cpp
/// \brief Tests for Rocpanda: layout/placement, the client/server write
/// protocol with active buffering (incl. overflow spill), sync, collective
/// restart with different server counts, and shutdown.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <numeric>

#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "roccom/blockio.h"
#include "rocpanda/client.h"
#include "rocpanda/layout.h"
#include "rocpanda/server.h"
#include "shdf/reader.h"
#include "vfs/vfs.h"

namespace roc::rocpanda {
namespace {

using roccom::IoRequest;
using roccom::Roccom;

mesh::MeshBlock make_block(int id, int n = 4) {
  auto b = mesh::MeshBlock::structured(id, {n, n, n});
  mesh::add_fluid_schema(b);
  auto& p = b.field("pressure");
  std::iota(p.data.begin(), p.data.end(), static_cast<double>(id * 10000));
  for (size_t i = 0; i < b.coords().size(); ++i)
    b.coords()[i] = static_cast<double>(id) + 0.001 * static_cast<double>(i);
  return b;
}

// --- layout ------------------------------------------------------------------

TEST(Layout, PaperPlacementRanksZeroAndMultiples) {
  // n=15 clients + 1 server per 16-way node: servers at 0, 16, 32 ...
  const Layout l(48, 3);
  EXPECT_EQ(l.group_size(), 16);
  EXPECT_TRUE(l.is_server(0));
  EXPECT_TRUE(l.is_server(16));
  EXPECT_TRUE(l.is_server(32));
  EXPECT_FALSE(l.is_server(1));
  EXPECT_FALSE(l.is_server(15));
  EXPECT_EQ(l.nclients(), 45);
  EXPECT_EQ(l.server_of_client(1), 0);
  EXPECT_EQ(l.server_of_client(15), 0);
  EXPECT_EQ(l.server_of_client(17), 16);
  EXPECT_EQ(l.server_of_client(47), 32);
  EXPECT_EQ(l.clients_of_server(0).size(), 15u);
  EXPECT_EQ(l.server_index(32), 2);
  EXPECT_EQ(l.server_world_rank(2), 32);
}

TEST(Layout, EightToOneRatio) {
  const Layout l = Layout::with_ratio(18, 8);
  EXPECT_EQ(l.nservers(), 2);
  EXPECT_EQ(l.nclients(), 16);
  const Layout l2 = Layout::with_ratio(72, 8);
  EXPECT_EQ(l2.nservers(), 8);
  EXPECT_EQ(l2.nclients(), 64);
}

TEST(Layout, ClientIndicesDenseAndOrdered) {
  const Layout l(10, 3);  // group 4: servers 0,4,8
  std::vector<int> indices;
  for (int r = 0; r < 10; ++r)
    if (!l.is_server(r)) indices.push_back(l.client_index(r));
  std::vector<int> expect(indices.size());
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(indices, expect);
}

TEST(Layout, UnevenLastGroup) {
  const Layout l(10, 3);
  EXPECT_EQ(l.clients_of_server(8), std::vector<int>{9});
  EXPECT_EQ(l.server_of_client(9), 8);
}

TEST(Layout, InvalidConfigurationsRejected) {
  EXPECT_THROW(Layout(1, 1), InvalidArgument);
  EXPECT_THROW(Layout(4, 0), InvalidArgument);
  EXPECT_THROW(Layout(4, 4), InvalidArgument);
}

// --- protocol helpers ----------------------------------------------------------

/// Runs `clients` client bodies + servers under one world.  The client body
/// gets (world, layout, client_comm, client object).
void run_deployment(
    int nclients, int nservers, vfs::FileSystem& fs,
    const ServerOptions& server_opts,
    const std::function<void(comm::Comm&, const Layout&, comm::Comm&,
                             RocpandaClient&)>& client_body) {
  const int world_size = nclients + nservers;
  comm::World::run(world_size, [&](comm::Comm& world) {
    comm::RealEnv env;
    const Layout layout(world.size(), nservers);
    const bool server = layout.is_server(world.rank());
    auto local = world.split(server ? 1 : 0, world.rank());
    if (server) {
      (void)run_server(world, *local, env, fs, layout, server_opts);
    } else {
      RocpandaClient client(world, env, layout);
      client_body(world, layout, *local, client);
      client.shutdown();
    }
  });
}

TEST(Rocpanda, CollectiveWriteProducesOneFilePerServer) {
  vfs::MemFileSystem fs;
  run_deployment(6, 2, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout& layout, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   auto b = make_block(clients.rank());
                   w.register_pane(b.id(), &b);
                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "snap", 0.0});
                   panda.sync();
                   EXPECT_EQ(layout.nservers(), 2);
                 });
  EXPECT_EQ(fs.list("snap_s").size(), 2u);  // files = servers, not clients
  // All six blocks are in the two files.
  size_t blocks = 0;
  for (const auto& path : fs.list("snap_s")) {
    shdf::Reader r(fs, path);
    blocks += roccom::pane_ids_in_file(r, "fluid").size();
  }
  EXPECT_EQ(blocks, 6u);
}

TEST(Rocpanda, WriteReadRoundTripSameDeployment) {
  vfs::MemFileSystem fs;
  run_deployment(
      4, 1, fs, ServerOptions{},
      [&](comm::Comm&, const Layout&, comm::Comm& clients,
          RocpandaClient& panda) {
        Roccom com;
        auto& w = com.create_window("fluid");
        auto b1 = make_block(clients.rank() * 2);
        auto b2 = make_block(clients.rank() * 2 + 1, 5);
        w.register_pane(b1.id(), &b1);
        w.register_pane(b2.id(), &b2);
        const auto crc1 = b1.state_checksum();
        const auto crc2 = b2.state_checksum();

        panda.write_attribute(com, IoRequest{"fluid", "all", "rt", 2.0});
        b1.field("pressure").data.assign(b1.field("pressure").data.size(),
                                         -1.0);
        b2.coords().assign(b2.coords().size(), -1.0);
        panda.read_attribute(com, IoRequest{"fluid", "all", "rt", 2.0});
        EXPECT_EQ(b1.state_checksum(), crc1);
        EXPECT_EQ(b2.state_checksum(), crc2);
      });
}

TEST(Rocpanda, BufferReuseSafety) {
  vfs::MemFileSystem fs;
  run_deployment(2, 1, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   auto b = make_block(clients.rank());
                   w.register_pane(b.id(), &b);
                   const auto saved = b.field("pressure").data;

                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "reuse", 0.0});
                   // Mutate immediately; the ack guarantees the server
                   // buffered our data.
                   b.field("pressure").data.assign(
                       b.field("pressure").data.size(), 1e9);
                   panda.sync();

                   const auto back = panda.fetch_blocks(
                       "reuse", {clients.rank()});
                   ASSERT_EQ(back.size(), 1u);
                   EXPECT_EQ(back[0].field("pressure").data, saved);
                 });
}

TEST(Rocpanda, RestartWithDifferentServerCount) {
  // Written with 3 servers, restarted with 1 and with 2 (paper §4.1).
  vfs::MemFileSystem fs;
  run_deployment(6, 3, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   auto b = make_block(clients.rank());
                   w.register_pane(b.id(), &b);
                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "restart", 0.0});
                   panda.sync();
                 });
  ASSERT_EQ(fs.list("restart_s").size(), 3u);

  for (int nservers : {1, 2}) {
    run_deployment(
        6, nservers, fs, ServerOptions{},
        [&](comm::Comm&, const Layout&, comm::Comm& clients,
            RocpandaClient& panda) {
          // Each client requests its old block id.
          const auto blocks = panda.fetch_blocks("restart", {clients.rank()});
          ASSERT_EQ(blocks.size(), 1u);
          EXPECT_EQ(blocks[0].state_checksum(),
                    make_block(clients.rank()).state_checksum());
        });
  }
}

TEST(Rocpanda, RestartWithDifferentClientAssignment) {
  // 4 clients write 8 blocks; 2 clients read them back, 4 blocks each.
  vfs::MemFileSystem fs;
  run_deployment(4, 1, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   auto b1 = make_block(clients.rank());
                   auto b2 = make_block(clients.rank() + 4);
                   w.register_pane(b1.id(), &b1);
                   w.register_pane(b2.id(), &b2);
                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "redistribute", 0.0});
                   panda.sync();
                 });
  run_deployment(2, 1, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   EXPECT_EQ(panda.list_panes("redistribute"),
                             (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
                   std::vector<int> mine;
                   for (int i = 0; i < 8; ++i)
                     if (i % 2 == clients.rank()) mine.push_back(i);
                   const auto blocks =
                       panda.fetch_blocks("redistribute", mine);
                   ASSERT_EQ(blocks.size(), 4u);
                   for (size_t i = 0; i < blocks.size(); ++i)
                     EXPECT_EQ(blocks[i].state_checksum(),
                               make_block(mine[i]).state_checksum());
                 });
}

TEST(Rocpanda, MissingBlockOnRestartThrows) {
  vfs::MemFileSystem fs;
  run_deployment(2, 1, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   auto b = make_block(clients.rank());
                   w.register_pane(b.id(), &b);
                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "partial", 0.0});
                   panda.sync();
                 });
  run_deployment(2, 1, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   // These blocks were never written (distinct per client:
                   // two clients must not claim the same pane id).
                   EXPECT_THROW((void)panda.fetch_blocks(
                                    "partial", {clients.rank(),
                                                99 + clients.rank()}),
                                IoError);
                 });
}

TEST(Rocpanda, ActiveBufferingOverflowSpillsWithoutDataLoss) {
  vfs::MemFileSystem fs;
  ServerOptions opts;
  opts.buffer_capacity = 4 * 1024;  // far smaller than the data
  run_deployment(3, 1, fs, opts,
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   std::vector<mesh::MeshBlock> blocks;
                   blocks.reserve(4);
                   for (int i = 0; i < 4; ++i)
                     blocks.push_back(make_block(clients.rank() * 4 + i, 8));
                   for (auto& b : blocks) w.register_pane(b.id(), &b);

                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "spill", 0.0});
                   panda.sync();
                   const auto back = panda.fetch_blocks(
                       "spill", {clients.rank() * 4});
                   EXPECT_EQ(back[0].state_checksum(),
                             blocks[0].state_checksum());
                 });
  // Everything is on disk.
  size_t total = 0;
  for (const auto& path : fs.list("spill_s")) {
    shdf::Reader r(fs, path);
    total += roccom::pane_ids_in_file(r, "fluid").size();
  }
  EXPECT_EQ(total, 12u);
}

TEST(Rocpanda, NoActiveBufferingStillCorrect) {
  vfs::MemFileSystem fs;
  ServerOptions opts;
  opts.active_buffering = false;
  run_deployment(4, 2, fs, opts,
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   auto b = make_block(clients.rank());
                   w.register_pane(b.id(), &b);
                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "noab", 0.0});
                   panda.sync();
                   const auto back =
                       panda.fetch_blocks("noab", {clients.rank()});
                   EXPECT_EQ(back[0].state_checksum(), b.state_checksum());
                 });
}

TEST(Rocpanda, MultiSnapshotMultiWindowRun) {
  // The full GENx output pattern: several windows, back-to-back requests,
  // several snapshots, one sync at the end.
  vfs::MemFileSystem fs;
  run_deployment(
      6, 2, fs, ServerOptions{},
      [&](comm::Comm&, const Layout&, comm::Comm& clients,
          RocpandaClient& panda) {
        Roccom com;
        auto& wf = com.create_window("fluid");
        auto& ws = com.create_window("solid");
        auto bf = make_block(clients.rank());
        auto bs = make_block(clients.rank() + 6);
        wf.register_pane(bf.id(), &bf);
        ws.register_pane(bs.id(), &bs);

        for (int snap = 0; snap < 3; ++snap) {
          const std::string base = "run_" + std::to_string(snap);
          bf.field("pressure").data[0] = snap;
          panda.write_attribute(com, IoRequest{"fluid", "all", base,
                                               static_cast<double>(snap)});
          panda.write_attribute(com, IoRequest{"solid", "all", base,
                                               static_cast<double>(snap)});
        }
        panda.sync();
        EXPECT_EQ(panda.stats().write_calls, 6u);
        EXPECT_EQ(panda.stats().blocks_sent, 6u);
      });
  for (int snap = 0; snap < 3; ++snap) {
    const auto files = fs.list("run_" + std::to_string(snap) + "_s");
    ASSERT_EQ(files.size(), 2u);
    size_t fluid = 0, solid = 0;
    for (const auto& path : files) {
      shdf::Reader r(fs, path);
      fluid += roccom::pane_ids_in_file(r, "fluid").size();
      solid += roccom::pane_ids_in_file(r, "solid").size();
    }
    EXPECT_EQ(fluid, 6u);
    EXPECT_EQ(solid, 6u);
  }
}

TEST(Rocpanda, ZeroPaneClientParticipates) {
  // A client with no panes still performs the collective correctly.
  vfs::MemFileSystem fs;
  run_deployment(3, 1, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   mesh::MeshBlock b;
                   if (clients.rank() != 1) {
                     b = make_block(clients.rank());
                     w.register_pane(b.id(), &b);
                   }
                   panda.write_attribute(
                       com, IoRequest{"fluid", "all", "zero", 0.0});
                   panda.sync();
                   const auto ids = panda.list_panes("zero");
                   EXPECT_EQ(ids, (std::vector<int>{0, 2}));
                 });
}

TEST(Rocpanda, SelectiveFieldWrite) {
  vfs::MemFileSystem fs;
  run_deployment(2, 1, fs, ServerOptions{},
                 [&](comm::Comm&, const Layout&, comm::Comm& clients,
                     RocpandaClient& panda) {
                   Roccom com;
                   auto& w = com.create_window("fluid");
                   auto b = make_block(clients.rank());
                   w.register_pane(b.id(), &b);
                   panda.write_attribute(
                       com, IoRequest{"fluid", "mesh", "sel", 0.0});
                   panda.write_attribute(
                       com, IoRequest{"fluid", "pressure", "sel", 0.0});
                   panda.sync();
                 });
  shdf::Reader r(fs, "sel_s0000.shdf");
  EXPECT_TRUE(r.has_dataset("fluid/block_000000/coords"));
  EXPECT_TRUE(r.has_dataset("fluid/block_000000/field:pressure"));
  EXPECT_FALSE(r.has_dataset("fluid/block_000000/field:velocity"));
}

// --- async vfs backend in the background writer ---------------------------

TEST(Rocpanda, AsyncIoWriteReadRoundTripOnPosix) {
  // A POSIX base gives the server's writer a REAL ring engine (uring or
  // thread pool); the snapshot must still read back bit-identical.
  const auto root = std::filesystem::temp_directory_path() /
                    ("rocpio_panda_async_" + std::to_string(::getpid()));
  {
    vfs::PosixFileSystem fs(root.string());
    ServerOptions opts;
    opts.async_io = true;
    opts.async.queue_depth = 8;
    run_deployment(
        4, 1, fs, opts,
        [&](comm::Comm&, const Layout&, comm::Comm& clients,
            RocpandaClient& panda) {
          Roccom com;
          auto& w = com.create_window("fluid");
          auto b1 = make_block(clients.rank() * 2, 6);
          auto b2 = make_block(clients.rank() * 2 + 1, 5);
          w.register_pane(b1.id(), &b1);
          w.register_pane(b2.id(), &b2);
          const auto crc1 = b1.state_checksum();
          const auto crc2 = b2.state_checksum();
          panda.write_attribute(com, IoRequest{"fluid", "all", "art", 2.0});
          b1.field("pressure").data.assign(b1.field("pressure").data.size(),
                                           -1.0);
          b2.coords().assign(b2.coords().size(), -1.0);
          panda.read_attribute(com, IoRequest{"fluid", "all", "art", 2.0});
          EXPECT_EQ(b1.state_checksum(), crc1);
          EXPECT_EQ(b2.state_checksum(), crc2);
        });
  }
  std::filesystem::remove_all(root);
}

TEST(Rocpanda, AsyncIoStatsPopulatedAndMemBaseStaysDeterministic) {
  // On a Mem base the backend pins to the sync shim — the run must still
  // work and the ServerStats async fields must be populated.
  vfs::MemFileSystem fs;
  comm::World::run(2, [&](comm::Comm& world) {
    comm::RealEnv env;
    const Layout layout(world.size(), 1);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      ServerOptions opts;
      opts.async_io = true;
      const ServerStats st =
          run_server(world, *local, env, fs, layout, opts);
      EXPECT_GT(st.async_submissions, 0u);
      EXPECT_GE(st.async_queue_depth_peak, 1);
      return;
    }
    RocpandaClient client(world, env, layout);
    Roccom com;
    auto& w = com.create_window("f");
    auto b = make_block(0, 5);
    w.register_pane(0, &b);
    client.write_attribute(com, IoRequest{"f", "all", "amem", 0.0});
    client.sync();
    const auto back = client.fetch_blocks("amem", {0});
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].state_checksum(), b.state_checksum());
    client.shutdown();
  });
}


// --- client-side buffer hierarchy (extension; paper §6.1's "buffer
// hierarchy on both the clients and servers") ------------------------------

TEST(ClientBuffering, RoundTripAndBufferReuse) {
  vfs::MemFileSystem fs;
  const int nclients = 3, nservers = 1;
  comm::World::run(nclients + nservers, [&](comm::Comm& world) {
    comm::RealEnv env;
    const Layout layout(world.size(), nservers);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)run_server(world, *local, env, fs, layout, ServerOptions{});
      return;
    }
    ClientOptions opts;
    opts.client_buffering = true;
    RocpandaClient client(world, env, layout, opts);
    Roccom com;
    auto& w = com.create_window("f");
    auto b = make_block(local->rank(), 5);
    w.register_pane(b.id(), &b);
    const auto saved = b.field("pressure").data;

    client.write_attribute(com, roccom::IoRequest{"f", "all", "cb", 0.0});
    // Buffer-reuse safety: mutate immediately after the call returns.
    b.field("pressure").data.assign(b.field("pressure").data.size(), -5.0);
    client.sync();
    EXPECT_GT(client.stats().bytes_buffered, 0u);

    const auto back = client.fetch_blocks("cb", {local->rank()});
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].field("pressure").data, saved);
    client.shutdown();
  });
}

TEST(ClientBuffering, BackPressureOnTinyBuffer) {
  vfs::MemFileSystem fs;
  comm::World::run(2, [&](comm::Comm& world) {
    comm::RealEnv env;
    const Layout layout(world.size(), 1);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)run_server(world, *local, env, fs, layout, ServerOptions{});
      return;
    }
    ClientOptions opts;
    opts.client_buffering = true;
    opts.client_buffer_capacity = 1024;  // smaller than one snapshot
    RocpandaClient client(world, env, layout, opts);
    Roccom com;
    auto& w = com.create_window("f");
    auto b = make_block(0, 6);
    w.register_pane(0, &b);
    for (int snap = 0; snap < 4; ++snap) {
      b.field("pressure").data[0] = snap;
      client.write_attribute(
          com, roccom::IoRequest{"f", "all", "bp" + std::to_string(snap),
                                 0.0});
    }
    client.sync();
    EXPECT_GT(client.stats().backpressure_waits, 0u);
    // Last snapshot is intact despite the pressure.
    const auto back = client.fetch_blocks("bp3", {0});
    EXPECT_EQ(back[0].field("pressure").data[0], 3.0);
    client.shutdown();
  });
}

TEST(ClientBuffering, ShutdownDrainsOutstandingWrites) {
  vfs::MemFileSystem fs;
  comm::World::run(2, [&](comm::Comm& world) {
    comm::RealEnv env;
    const Layout layout(world.size(), 1);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)run_server(world, *local, env, fs, layout, ServerOptions{});
      return;
    }
    {
      ClientOptions opts;
      opts.client_buffering = true;
      RocpandaClient client(world, env, layout, opts);
      Roccom com;
      auto& w = com.create_window("f");
      auto b = make_block(0);
      w.register_pane(0, &b);
      client.write_attribute(com, roccom::IoRequest{"f", "all", "sd", 0.0});
      // no sync: destructor-driven shutdown must not lose the snapshot
    }
  });
  // The snapshot reached the server and its file.
  shdf::Reader r(fs, "sd_s0000.shdf");
  EXPECT_EQ(roccom::pane_ids_in_file(r, "f"), std::vector<int>{0});
}

}  // namespace
}  // namespace roc::rocpanda
