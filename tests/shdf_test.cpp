/// \file shdf_test.cpp
/// \brief Tests for the SHDF scientific file format: round trips,
/// attributes, directory engines, append mode, integrity and corruption
/// detection.

#include <gtest/gtest.h>

#include "shdf/reader.h"
#include "shdf/writer.h"
#include "util/rng.h"
#include "vfs/vfs.h"

namespace roc::shdf {
namespace {

class ShdfTest : public ::testing::TestWithParam<DirectoryKind> {
 protected:
  vfs::MemFileSystem fs_;
};

TEST_P(ShdfTest, EmptyFileRoundTrip) {
  {
    Writer w(fs_, "empty.shdf", GetParam());
    w.close();
  }
  Reader r(fs_, "empty.shdf");
  EXPECT_EQ(r.dataset_count(), 0u);
  EXPECT_EQ(r.directory_kind(), GetParam());
  EXPECT_FALSE(r.has_dataset("anything"));
}

TEST_P(ShdfTest, TypedRoundTrip) {
  const std::vector<double> d{1.5, -2.5, 3.25};
  const std::vector<int32_t> i{10, -20, 30, 40};
  const std::vector<float> f{0.5f, 1.5f};
  const std::vector<uint8_t> b{1, 2, 255};
  {
    Writer w(fs_, "typed.shdf", GetParam());
    w.add("doubles", d);
    w.add("ints", i);
    w.add("floats", f);
    w.add("bytes", b);
  }
  Reader r(fs_, "typed.shdf");
  EXPECT_EQ(r.dataset_count(), 4u);
  EXPECT_EQ(r.read<double>("doubles"), d);
  EXPECT_EQ(r.read<int32_t>("ints"), i);
  EXPECT_EQ(r.read<float>("floats"), f);
  EXPECT_EQ(r.read<uint8_t>("bytes"), b);
}

TEST_P(ShdfTest, TypeMismatchThrows) {
  {
    Writer w(fs_, "t.shdf", GetParam());
    w.add("x", std::vector<double>{1.0});
  }
  Reader r(fs_, "t.shdf");
  EXPECT_THROW((void)r.read<int32_t>("x"), FormatError);
}

TEST_P(ShdfTest, MultiDimensionalDims) {
  std::vector<double> data(3 * 4 * 5);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  {
    Writer w(fs_, "md.shdf", GetParam());
    w.add("cube", data, {}, {3, 4, 5});
  }
  Reader r(fs_, "md.shdf");
  EXPECT_EQ(r.info("cube").def.dims, (std::vector<uint64_t>{3, 4, 5}));
  EXPECT_EQ(r.read<double>("cube"), data);
}

TEST_P(ShdfTest, DimsElementCountMismatchRejected) {
  Writer w(fs_, "bad.shdf", GetParam());
  EXPECT_THROW(w.add("x", std::vector<double>{1, 2, 3}, {}, {2, 2}),
               InvalidArgument);
}

TEST_P(ShdfTest, AttributesOfAllKinds) {
  {
    Writer w(fs_, "attrs.shdf", GetParam());
    w.add("data", std::vector<double>{1.0},
          {Attribute{"count", int64_t{42}},
           Attribute{"dt", 0.125},
           Attribute{"label", std::string("pressure")},
           Attribute{"dims", std::vector<int64_t>{4, 5, 6}},
           Attribute{"weights", std::vector<double>{0.5, 0.25}}});
  }
  Reader r(fs_, "attrs.shdf");
  EXPECT_EQ(std::get<int64_t>(*r.attribute("data", "count")), 42);
  EXPECT_DOUBLE_EQ(std::get<double>(*r.attribute("data", "dt")), 0.125);
  EXPECT_EQ(std::get<std::string>(*r.attribute("data", "label")), "pressure");
  EXPECT_EQ(std::get<std::vector<int64_t>>(*r.attribute("data", "dims")),
            (std::vector<int64_t>{4, 5, 6}));
  EXPECT_EQ(std::get<std::vector<double>>(*r.attribute("data", "weights")),
            (std::vector<double>{0.5, 0.25}));
  EXPECT_FALSE(r.attribute("data", "absent").has_value());
}

TEST_P(ShdfTest, DuplicateNameRejected) {
  Writer w(fs_, "dup.shdf", GetParam());
  w.add("x", std::vector<double>{1.0});
  EXPECT_THROW(w.add("x", std::vector<double>{2.0}), InvalidArgument);
}

TEST_P(ShdfTest, ManyDatasetsAllRecoverable) {
  constexpr int kN = 200;
  {
    Writer w(fs_, "many.shdf", GetParam());
    for (int i = 0; i < kN; ++i)
      w.add("ds_" + std::to_string(i),
            std::vector<int64_t>{i, i * 2, i * 3});
  }
  Reader r(fs_, "many.shdf");
  EXPECT_EQ(r.dataset_count(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    const auto v = r.read<int64_t>("ds_" + std::to_string(i));
    EXPECT_EQ(v, (std::vector<int64_t>{i, i * 2, i * 3}));
  }
}

TEST_P(ShdfTest, PrefixQueriesFollowGroupConvention) {
  {
    Writer w(fs_, "groups.shdf", GetParam());
    w.add("fluid/block_000001/coords", std::vector<double>{1});
    w.add("fluid/block_000001/field:p", std::vector<double>{2});
    w.add("fluid/block_000002/coords", std::vector<double>{3});
    w.add("solid/block_000003/coords", std::vector<double>{4});
  }
  Reader r(fs_, "groups.shdf");
  EXPECT_EQ(r.dataset_names_with_prefix("fluid/").size(), 3u);
  EXPECT_EQ(r.dataset_names_with_prefix("fluid/block_000001/").size(), 2u);
  EXPECT_EQ(r.dataset_names_with_prefix("solid/").size(), 1u);
  EXPECT_EQ(r.dataset_names_with_prefix("gas/").size(), 0u);
}

TEST_P(ShdfTest, AppendPreservesExistingDatasets) {
  {
    Writer w(fs_, "app.shdf", GetParam());
    w.add("first", std::vector<double>{1, 2});
  }
  {
    Writer w = Writer::append(fs_, "app.shdf");
    w.add("second", std::vector<double>{3, 4, 5});
  }
  {
    Writer w = Writer::append(fs_, "app.shdf");
    w.add("third", std::vector<int32_t>{6});
  }
  Reader r(fs_, "app.shdf");
  EXPECT_EQ(r.dataset_count(), 3u);
  EXPECT_EQ(r.read<double>("first"), (std::vector<double>{1, 2}));
  EXPECT_EQ(r.read<double>("second"), (std::vector<double>{3, 4, 5}));
  EXPECT_EQ(r.read<int32_t>("third"), (std::vector<int32_t>{6}));
  EXPECT_EQ(r.directory_kind(), GetParam());  // kind survives append
}

TEST_P(ShdfTest, AppendRejectsDuplicateOfExisting) {
  {
    Writer w(fs_, "app2.shdf", GetParam());
    w.add("x", std::vector<double>{1});
  }
  Writer w = Writer::append(fs_, "app2.shdf");
  EXPECT_THROW(w.add("x", std::vector<double>{2}), InvalidArgument);
}

TEST_P(ShdfTest, ChecksumDetectsPayloadCorruption) {
  {
    Writer w(fs_, "corrupt.shdf", GetParam());
    w.add("x", std::vector<double>{1.0, 2.0, 3.0, 4.0});
  }
  // Flip one byte inside the payload.
  {
    Reader probe(fs_, "corrupt.shdf");
    const auto off = probe.info("x").data_offset;
    auto f = fs_.open("corrupt.shdf", vfs::OpenMode::kReadWrite);
    f->seek(off + 5);
    unsigned char b;
    f->read(&b, 1);
    b ^= 0xFF;
    f->seek(off + 5);
    f->write(&b, 1);
  }
  Reader r(fs_, "corrupt.shdf");
  EXPECT_THROW((void)r.read_raw("x"), FormatError);
}

TEST_P(ShdfTest, ImplicitCloseOnDestruction) {
  {
    Writer w(fs_, "implicit.shdf", GetParam());
    w.add("x", std::vector<double>{9.0});
    // no close()
  }
  Reader r(fs_, "implicit.shdf");
  EXPECT_EQ(r.read<double>("x"), (std::vector<double>{9.0}));
}

TEST_P(ShdfTest, ZeroElementDataset) {
  {
    Writer w(fs_, "zero.shdf", GetParam());
    w.add("empty", std::vector<double>{});
  }
  Reader r(fs_, "zero.shdf");
  EXPECT_TRUE(r.read<double>("empty").empty());
}

INSTANTIATE_TEST_SUITE_P(DirectoryKinds, ShdfTest,
                         ::testing::Values(DirectoryKind::kLinear,
                                           DirectoryKind::kIndexed),
                         [](const auto& info) {
                           return info.param == DirectoryKind::kLinear
                                      ? "Linear"
                                      : "Indexed";
                         });

// --- codecs (SHDF's analogue of HDF I/O filters) -----------------------------

TEST(Codec, ZeroRleRoundTripShapes) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<unsigned char> data(rng.next_below(5000));
    // Mix of zero runs and random bytes.
    size_t i = 0;
    while (i < data.size()) {
      const size_t run = 1 + rng.next_below(200);
      const bool zeros = rng.next_below(2) == 0;
      for (size_t k = 0; k < run && i < data.size(); ++k, ++i)
        data[i] = zeros ? 0 : static_cast<unsigned char>(rng.next_u64());
    }
    const auto enc = encode(Codec::kZeroRle, data.data(), data.size());
    const auto dec =
        decode(Codec::kZeroRle, enc.data(), enc.size(), data.size());
    EXPECT_EQ(dec, data);
  }
}

TEST(Codec, ZeroHeavyDataCompressesWell) {
  std::vector<unsigned char> data(100000, 0);
  data[5] = 1;
  data[99999] = 2;
  const auto enc = encode(Codec::kZeroRle, data.data(), data.size());
  EXPECT_LT(enc.size(), data.size() / 100);
}

TEST(Codec, IncompressibleDataGrowsOnlyMarginally) {
  Rng rng(12);
  std::vector<unsigned char> data(10000);
  for (auto& b : data) b = static_cast<unsigned char>(1 + rng.next_below(255));
  const auto enc = encode(Codec::kZeroRle, data.data(), data.size());
  EXPECT_LT(enc.size(), data.size() + 16);
}

TEST(Codec, MalformedStreamsRejected) {
  std::vector<unsigned char> data(64, 0);
  auto enc = encode(Codec::kZeroRle, data.data(), data.size());
  // Truncation.
  EXPECT_THROW((void)decode(Codec::kZeroRle, enc.data(), enc.size() - 1, 64),
               FormatError);
  // Wrong expected size (both directions).
  EXPECT_THROW((void)decode(Codec::kZeroRle, enc.data(), enc.size(), 63),
               FormatError);
  EXPECT_THROW((void)decode(Codec::kZeroRle, enc.data(), enc.size(), 65),
               FormatError);
  // Unknown token.
  enc[0] = 0x7F;
  EXPECT_THROW((void)decode(Codec::kZeroRle, enc.data(), enc.size(), 64),
               FormatError);
}

TEST(Codec, CompressedDatasetRoundTripThroughFile) {
  vfs::MemFileSystem fs;
  std::vector<double> sparse(5000, 0.0);  // zero-heavy: compresses
  sparse[7] = 3.25;
  sparse[4999] = -1.5;
  std::vector<double> dense(512);
  Rng rng(13);
  for (auto& v : dense) v = rng.next_double();
  {
    Writer w(fs, "codec.shdf");
    DatasetDef def;
    def.name = "sparse";
    def.type = DataType::kFloat64;
    def.codec = Codec::kZeroRle;
    def.dims = {sparse.size()};
    w.add_dataset(def, sparse.data());
    w.add("dense", dense);  // default: uncompressed
  }
  Reader r(fs, "codec.shdf");
  EXPECT_EQ(r.read<double>("sparse"), sparse);
  EXPECT_EQ(r.read<double>("dense"), dense);
  // The stored footprint of the sparse dataset is far below its logical
  // size, and the metadata reports both.
  EXPECT_EQ(r.info("sparse").data_bytes, sparse.size() * 8);
  EXPECT_LT(r.info("sparse").stored_bytes, sparse.size());
  EXPECT_EQ(r.info("dense").stored_bytes, r.info("dense").data_bytes);
}

TEST(Codec, ChecksumStillDetectsCorruptionUnderCompression) {
  vfs::MemFileSystem fs;
  std::vector<double> v(1000, 0.0);
  v[500] = 42.0;
  {
    Writer w(fs, "c.shdf");
    DatasetDef def;
    def.name = "x";
    def.type = DataType::kFloat64;
    def.codec = Codec::kZeroRle;
    def.dims = {v.size()};
    w.add_dataset(def, v.data());
  }
  // Flip a byte inside the stored (compressed) payload.
  {
    Reader probe(fs, "c.shdf");
    const auto off = probe.info("x").data_offset;
    auto f = fs.open("c.shdf", vfs::OpenMode::kReadWrite);
    unsigned char b;
    f->seek(off + 7);
    f->read(&b, 1);
    b ^= 0x5A;
    f->seek(off + 7);
    f->write(&b, 1);
  }
  Reader r(fs, "c.shdf");
  EXPECT_THROW((void)r.read_raw("x"), FormatError);
}

TEST(Codec, WorksWithAppendAndBothDirectoryKinds) {
  for (auto kind : {DirectoryKind::kLinear, DirectoryKind::kIndexed}) {
    vfs::MemFileSystem fs;
    std::vector<double> zeros(2000, 0.0);
    {
      Writer w(fs, "a.shdf", kind);
      DatasetDef def;
      def.name = "z0";
      def.codec = Codec::kZeroRle;
      def.dims = {zeros.size()};
      w.add_dataset(def, zeros.data());
    }
    {
      Writer w = Writer::append(fs, "a.shdf");
      DatasetDef def;
      def.name = "z1";
      def.codec = Codec::kZeroRle;
      def.dims = {zeros.size()};
      w.add_dataset(def, zeros.data());
    }
    Reader r(fs, "a.shdf");
    EXPECT_EQ(r.read<double>("z0"), zeros);
    EXPECT_EQ(r.read<double>("z1"), zeros);
  }
}

TEST(Shdf, NotAnShdfFileRejected) {
  vfs::MemFileSystem fs;
  {
    auto f = fs.open("junk.bin", vfs::OpenMode::kTruncate);
    const std::string junk(1024, 'J');
    f->write(junk.data(), junk.size());
  }
  EXPECT_THROW(Reader(fs, "junk.bin"), FormatError);
}

TEST(Shdf, TruncatedFileRejected) {
  vfs::MemFileSystem fs;
  {
    Writer w(fs, "full.shdf");
    w.add("x", std::vector<double>(100, 1.0));
  }
  // Copy only the first half of the bytes into a new file.
  {
    auto in = fs.open("full.shdf", vfs::OpenMode::kRead);
    std::vector<unsigned char> half(in->size() / 2);
    in->read(half.data(), half.size());
    auto out = fs.open("half.shdf", vfs::OpenMode::kTruncate);
    out->write(half.data(), half.size());
  }
  EXPECT_THROW(Reader(fs, "half.shdf"), Error);
}

TEST(Shdf, LinearModeKeepsDirectoryCurrentAfterEveryAppend) {
  // A kLinear file is readable even if the writer never closes (HDF4-like
  // on-disk bookkeeping): the directory written after the last add is
  // complete.
  vfs::MemFileSystem fs;
  auto w = std::make_unique<Writer>(fs, "live.shdf", DirectoryKind::kLinear);
  w->add("a", std::vector<double>{1});
  w->add("b", std::vector<double>{2});
  {
    Reader r(fs, "live.shdf");
    EXPECT_EQ(r.dataset_count(), 2u);
    EXPECT_EQ(r.read<double>("b"), (std::vector<double>{2}));
  }
  w.reset();
}

TEST(Shdf, IndexedLookupIsNameOrderIndependent) {
  vfs::MemFileSystem fs;
  {
    Writer w(fs, "ord.shdf", DirectoryKind::kIndexed);
    w.add("zeta", std::vector<double>{1});
    w.add("alpha", std::vector<double>{2});
    w.add("mid", std::vector<double>{3});
  }
  Reader r(fs, "ord.shdf");
  EXPECT_EQ(r.read<double>("zeta"), (std::vector<double>{1}));
  EXPECT_EQ(r.read<double>("alpha"), (std::vector<double>{2}));
  EXPECT_EQ(r.read<double>("mid"), (std::vector<double>{3}));
  // Indexed directory lists names sorted.
  const auto names = r.dataset_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Shdf, LargeDatasetHeaderWithManyAttributes) {
  // Exceeds the reader's 64 KiB header probe window to exercise the re-read
  // path.
  vfs::MemFileSystem fs;
  {
    Writer w(fs, "big_header.shdf");
    std::vector<Attribute> attrs;
    attrs.push_back(
        Attribute{"huge", std::vector<double>(20000, 0.5)});  // 160 KB attr
    w.add("x", std::vector<double>{1.0, 2.0}, std::move(attrs));
  }
  Reader r(fs, "big_header.shdf");
  EXPECT_EQ(r.read<double>("x"), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(std::get<std::vector<double>>(*r.attribute("x", "huge")).size(),
            20000u);
}

TEST(Shdf, WorksOnPosixFilesToo) {
  vfs::PosixFileSystem fs("/tmp/rocpio_shdf_test");
  {
    Writer w(fs, "posix.shdf");
    w.add("x", std::vector<double>{7.0});
  }
  Reader r(fs, "posix.shdf");
  EXPECT_EQ(r.read<double>("x"), (std::vector<double>{7.0}));
  fs.remove("posix.shdf");
}

}  // namespace
}  // namespace roc::shdf
