/// \file mesh_test.cpp
/// \brief Tests for mesh blocks, generators, partitioning and refinement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "mesh/generators.h"
#include "mesh/mesh_block.h"
#include "mesh/partition.h"
#include "mesh/refine.h"

namespace roc::mesh {
namespace {

TEST(MeshBlock, StructuredCounts) {
  auto b = MeshBlock::structured(1, {4, 5, 6});
  EXPECT_EQ(b.node_count(), 120u);
  EXPECT_EQ(b.element_count(), 3u * 4u * 5u);
  EXPECT_EQ(b.coords().size(), 360u);
  EXPECT_EQ(b.kind(), MeshKind::kStructured);
}

TEST(MeshBlock, StructuredMinimumDims) {
  EXPECT_THROW(MeshBlock::structured(0, {1, 2, 2}), InvalidArgument);
  EXPECT_NO_THROW(MeshBlock::structured(0, {2, 2, 2}));
}

TEST(MeshBlock, UnstructuredCounts) {
  // Two tets sharing a face over 5 nodes.
  auto b = MeshBlock::unstructured(2, 5, {0, 1, 2, 3, 1, 2, 3, 4});
  EXPECT_EQ(b.node_count(), 5u);
  EXPECT_EQ(b.element_count(), 2u);
}

TEST(MeshBlock, ConnectivityValidation) {
  EXPECT_THROW(MeshBlock::unstructured(0, 3, {0, 1, 2, 3}), InvalidArgument);
  EXPECT_THROW(MeshBlock::unstructured(0, 4, {0, 1, 2}), InvalidArgument);
}

TEST(MeshBlock, FieldsSizedByCentering) {
  auto b = MeshBlock::structured(0, {3, 3, 3});
  b.add_field("velocity", Centering::kNode, 3);
  b.add_field("pressure", Centering::kElement, 1);
  // Look the fields up after both insertions: add_field may reallocate the
  // field table and invalidate previously returned references.
  EXPECT_EQ(b.field("velocity").data.size(), 27u * 3u);
  EXPECT_EQ(b.field("pressure").data.size(), 8u);
  EXPECT_THROW(b.add_field("velocity", Centering::kNode, 3), InvalidArgument);
  EXPECT_EQ(b.find_field("nope"), nullptr);
  EXPECT_THROW((void)b.field("nope"), InvalidArgument);
}

TEST(MeshBlock, SerializeRoundTripStructured) {
  auto b = MeshBlock::structured(7, {3, 4, 2});
  for (size_t i = 0; i < b.coords().size(); ++i)
    b.coords()[i] = 0.25 * static_cast<double>(i);
  auto& f = b.add_field("temp", Centering::kElement, 1);
  std::iota(f.data.begin(), f.data.end(), 100.0);

  const auto bytes = b.serialize();
  const auto c = MeshBlock::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(c.id(), 7);
  EXPECT_EQ(c.node_dims(), b.node_dims());
  EXPECT_EQ(c.coords(), b.coords());
  EXPECT_EQ(c.field("temp").data, f.data);
  EXPECT_EQ(c.state_checksum(), b.state_checksum());
}

TEST(MeshBlock, SerializeRoundTripUnstructured) {
  auto b = MeshBlock::unstructured(9, 5, {0, 1, 2, 3, 1, 2, 3, 4});
  b.coords()[0] = 1.5;
  auto& f = b.add_field("stress", Centering::kElement, 6);
  f.data[3] = -2.0;

  const auto bytes = b.serialize();
  const auto c = MeshBlock::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(c.kind(), MeshKind::kUnstructured);
  EXPECT_EQ(c.connectivity(), b.connectivity());
  EXPECT_EQ(c.state_checksum(), b.state_checksum());
}

TEST(MeshBlock, ChecksumSensitivity) {
  auto b = MeshBlock::structured(1, {3, 3, 3});
  b.add_field("p", Centering::kElement, 1);
  const auto base = b.state_checksum();
  b.field("p").data[0] = 1e-12;
  EXPECT_NE(b.state_checksum(), base);
}

TEST(MeshBlock, ChecksumIgnoresFieldRegistrationOrder) {
  auto a = MeshBlock::structured(1, {3, 3, 3});
  a.add_field("a", Centering::kNode, 1);
  a.add_field("b", Centering::kElement, 1);
  auto b = MeshBlock::structured(1, {3, 3, 3});
  b.add_field("b", Centering::kElement, 1);
  b.add_field("a", Centering::kNode, 1);
  EXPECT_EQ(a.state_checksum(), b.state_checksum());
}

TEST(MeshBlock, CopyAttributeValidatesShape) {
  auto a = MeshBlock::structured(1, {3, 3, 3});
  a.add_field("p", Centering::kElement, 1);
  auto b = MeshBlock::structured(1, {3, 3, 4});
  b.add_field("p", Centering::kElement, 1);
  EXPECT_THROW(copy_block_attribute(a, b, "all"), InvalidArgument);

  auto c = MeshBlock::structured(1, {3, 3, 3});
  c.add_field("p", Centering::kElement, 1);
  a.field("p").data[2] = 42.0;
  a.coords()[5] = -1.0;
  copy_block_attribute(a, c, "all");
  EXPECT_EQ(c.field("p").data[2], 42.0);
  EXPECT_EQ(c.coords()[5], -1.0);

  // Single-field copy leaves the rest untouched.
  auto d = MeshBlock::structured(1, {3, 3, 3});
  d.add_field("p", Centering::kElement, 1);
  copy_block_attribute(a, d, "p");
  EXPECT_EQ(d.field("p").data[2], 42.0);
  EXPECT_EQ(d.coords()[5], 0.0);
}

// --- generators ------------------------------------------------------------

TEST(Generators, LabScaleBlockCountsAndSchema) {
  LabScaleSpec spec;
  spec.fluid_blocks = 10;
  spec.solid_blocks = 6;
  const RocketMesh mesh = make_lab_scale_rocket(spec);
  EXPECT_EQ(mesh.fluid.size(), 10u);
  EXPECT_EQ(mesh.solid.size(), 6u);
  for (const auto& b : mesh.fluid) {
    EXPECT_EQ(b.kind(), MeshKind::kStructured);
    EXPECT_NE(b.find_field("velocity"), nullptr);
    EXPECT_NE(b.find_field("pressure"), nullptr);
  }
  for (const auto& b : mesh.solid) {
    EXPECT_EQ(b.kind(), MeshKind::kUnstructured);
    EXPECT_NE(b.find_field("displacement"), nullptr);
    EXPECT_NE(b.find_field("stress"), nullptr);
  }
}

TEST(Generators, BlockIdsDenseAndUnique) {
  LabScaleSpec spec;
  spec.fluid_blocks = 8;
  spec.solid_blocks = 8;
  const RocketMesh mesh = make_lab_scale_rocket(spec);
  std::set<int> ids;
  for (const auto& b : mesh.fluid) ids.insert(b.id());
  for (const auto& b : mesh.solid) ids.insert(b.id());
  EXPECT_EQ(ids.size(), 16u);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), 15);
}

TEST(Generators, IrregularSizes) {
  // The paper's premise: blocks have different sizes.
  LabScaleSpec spec;
  spec.fluid_blocks = 16;
  spec.solid_blocks = 4;
  const RocketMesh mesh = make_lab_scale_rocket(spec);
  std::set<size_t> sizes;
  for (const auto& b : mesh.fluid) sizes.insert(b.payload_bytes());
  EXPECT_GT(sizes.size(), 4u) << "block sizes should vary";
}

TEST(Generators, DeterministicPerSeed) {
  LabScaleSpec spec;
  spec.fluid_blocks = 4;
  spec.solid_blocks = 2;
  const auto a = make_lab_scale_rocket(spec);
  const auto b = make_lab_scale_rocket(spec);
  ASSERT_EQ(a.fluid.size(), b.fluid.size());
  for (size_t i = 0; i < a.fluid.size(); ++i)
    EXPECT_EQ(a.fluid[i].state_checksum(), b.fluid[i].state_checksum());
  spec.seed = 1;
  const auto c = make_lab_scale_rocket(spec);
  EXPECT_NE(a.fluid[0].state_checksum(), c.fluid[0].state_checksum());
}

TEST(Generators, CoordinatesLieInCylinder) {
  LabScaleSpec spec;
  spec.fluid_blocks = 4;
  spec.solid_blocks = 2;
  const auto mesh = make_lab_scale_rocket(spec);
  for (const auto& b : mesh.fluid) {
    for (size_t n = 0; n < b.node_count(); ++n) {
      const double x = b.coords()[3 * n], y = b.coords()[3 * n + 1],
                   z = b.coords()[3 * n + 2];
      const double r = std::sqrt(x * x + y * y);
      EXPECT_LE(r, spec.radius + 1e-9);
      EXPECT_GE(z, -1e-9);
      EXPECT_LE(z, spec.length + 1e-9);
    }
  }
}

TEST(Generators, ScalabilityMeshUniformPerSegment) {
  ScalabilitySpec spec;
  spec.segments = 4;
  spec.blocks_per_segment = 3;
  const auto blocks = make_extendible_cylinder(spec);
  ASSERT_EQ(blocks.size(), 12u);
  // Fixed data per segment: every segment carries the same bytes.
  size_t seg0 = 0, seg3 = 0;
  for (int q = 0; q < 3; ++q) {
    seg0 += blocks[static_cast<size_t>(q)].payload_bytes();
    seg3 += blocks[static_cast<size_t>(9 + q)].payload_bytes();
  }
  EXPECT_EQ(seg0, seg3);
}

// --- partitioner -----------------------------------------------------------

TEST(Partition, EveryBlockAssignedExactlyOnce) {
  LabScaleSpec spec;
  spec.fluid_blocks = 20;
  spec.solid_blocks = 12;
  const auto mesh = make_lab_scale_rocket(spec);
  std::vector<MeshBlock> all;
  for (const auto& b : mesh.fluid) all.push_back(b);
  for (const auto& b : mesh.solid) all.push_back(b);

  const auto part = partition_blocks(all, 5);
  ASSERT_EQ(part.size(), 5u);
  std::set<size_t> seen;
  for (const auto& lst : part)
    for (size_t idx : lst) EXPECT_TRUE(seen.insert(idx).second);
  EXPECT_EQ(seen.size(), all.size());
}

TEST(Partition, BalancedWithinReason) {
  LabScaleSpec spec;
  spec.fluid_blocks = 48;
  spec.solid_blocks = 32;
  const auto mesh = make_lab_scale_rocket(spec);
  std::vector<MeshBlock> all;
  for (const auto& b : mesh.fluid) all.push_back(b);
  for (const auto& b : mesh.solid) all.push_back(b);

  const auto part = partition_blocks(all, 8);
  EXPECT_LT(partition_imbalance(all, part), 1.35);
}

TEST(Partition, MoreProcessorsThanBlocks) {
  std::vector<MeshBlock> blocks;
  blocks.push_back(MeshBlock::structured(0, {3, 3, 3}));
  const auto part = partition_blocks(blocks, 4);
  ASSERT_EQ(part.size(), 4u);
  size_t total = 0;
  for (const auto& lst : part) total += lst.size();
  EXPECT_EQ(total, 1u);
}

TEST(Partition, RebalanceNeverWorsens) {
  LabScaleSpec spec;
  spec.fluid_blocks = 30;
  spec.solid_blocks = 10;
  spec.size_jitter = 0.6;
  const auto mesh = make_lab_scale_rocket(spec);
  std::vector<MeshBlock> all;
  for (const auto& b : mesh.fluid) all.push_back(b);
  for (const auto& b : mesh.solid) all.push_back(b);

  // Deliberately bad partition: round-robin by index.
  Partition part(4);
  for (size_t i = 0; i < all.size(); ++i) part[i % 4].push_back(i);
  const double before = partition_imbalance(all, part);
  const auto moves = plan_rebalance(all, part);
  const double after = partition_imbalance(all, part);
  EXPECT_LE(after, before + 1e-12);
  // Every move references a real block.
  for (const auto& m : moves) EXPECT_LT(m.block_index, all.size());
}

// --- refinement --------------------------------------------------------------

TEST(Refine, StructuredSplitPreservesNodesOfSplitPlane) {
  auto b = MeshBlock::structured(0, {4, 6, 3});  // longest dim: j (6)
  for (size_t i = 0; i < b.coords().size(); ++i)
    b.coords()[i] = static_cast<double>(i);
  auto& f = b.add_field("p", Centering::kElement, 1);
  std::iota(f.data.begin(), f.data.end(), 0.0);

  int next_id = 100;
  auto [a, c] = split_structured(b, next_id);
  EXPECT_EQ(next_id, 102);
  EXPECT_EQ(a.id(), 100);
  EXPECT_EQ(c.id(), 101);
  // Node counts: split at j=3 -> children have j-dims 4 and 4... (3+1, 6-3).
  EXPECT_EQ(a.node_dims()[1] + c.node_dims()[1], 6 + 1);  // shared plane
  EXPECT_EQ(a.node_dims()[0], 4);
  EXPECT_EQ(c.node_dims()[2], 3);
  // Element counts conserved exactly.
  EXPECT_EQ(a.element_count() + c.element_count(), b.element_count());
}

TEST(Refine, StructuredSplitConservesElementFieldSum) {
  auto b = MeshBlock::structured(0, {5, 4, 7});
  auto& f = b.add_field("mass", Centering::kElement, 1);
  Rng rng(3);
  for (auto& v : f.data) v = rng.next_double();
  const double total = field_sum(b, "mass");

  int next_id = 1;
  auto [a, c] = split_structured(b, next_id);
  EXPECT_NEAR(field_sum(a, "mass") + field_sum(c, "mass"), total, 1e-12);
}

TEST(Refine, UnstructuredSplitConservesElements) {
  LabScaleSpec spec;
  spec.fluid_blocks = 1;
  spec.solid_blocks = 1;
  auto mesh = make_lab_scale_rocket(spec);
  MeshBlock& b = mesh.solid[0];
  auto& f = b.field("stress");
  Rng rng(5);
  for (auto& v : f.data) v = rng.next_double();
  const double total = field_sum(b, "stress");

  int next_id = 50;
  auto [x, y] = split_unstructured(b, next_id);
  EXPECT_GT(x.element_count(), 0u);
  EXPECT_GT(y.element_count(), 0u);
  EXPECT_EQ(x.element_count() + y.element_count(), b.element_count());
  EXPECT_NEAR(field_sum(x, "stress") + field_sum(y, "stress"), total, 1e-9);
  // Children are valid meshes (connectivity in range is enforced by the
  // constructor; also check the schema survived).
  EXPECT_NE(x.find_field("displacement"), nullptr);
  EXPECT_NE(y.find_field("stress"), nullptr);
}

TEST(Refine, SplitDispatchesOnKind) {
  auto s = MeshBlock::structured(0, {3, 3, 5});
  s.add_field("p", Centering::kElement, 1);
  int id = 0;
  auto [a, b] = split_block(s, id);
  EXPECT_EQ(a.kind(), MeshKind::kStructured);

  auto u = MeshBlock::unstructured(1, 5, {0, 1, 2, 3, 1, 2, 3, 4});
  u.coords()[0] = 0.0;
  u.coords()[3] = 10.0;  // spread along x
  auto [c, d] = split_block(u, id);
  EXPECT_EQ(c.kind(), MeshKind::kUnstructured);
}

TEST(Refine, TooSmallToSplitThrows) {
  auto b = MeshBlock::structured(0, {2, 2, 2});
  int id = 0;
  EXPECT_THROW((void)split_structured(b, id), InvalidArgument);
}

}  // namespace
}  // namespace roc::mesh
