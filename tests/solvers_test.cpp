/// \file solvers_test.cpp
/// \brief Unit tests for the mini-GENx physics modules: fluid, solid and
/// burn updates, the APN burn law, coupling extraction/reduction, and the
/// partition-independence contract of the reduction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "genx/solvers.h"
#include "mesh/generators.h"

namespace roc::genx {
namespace {

mesh::MeshBlock fluid_block() {
  auto b = mesh::MeshBlock::structured(0, {4, 4, 4});
  mesh::add_fluid_schema(b);
  return b;
}

mesh::MeshBlock solid_block() {
  auto b = mesh::MeshBlock::unstructured(1, 5, {0, 1, 2, 3, 1, 2, 3, 4});
  mesh::add_solid_schema(b);
  // Non-degenerate radii for the displacement update.
  for (size_t n = 0; n < b.node_count(); ++n) {
    b.coords()[3 * n] = 0.1 + 0.01 * static_cast<double>(n);
    b.coords()[3 * n + 1] = 0.05;
  }
  return b;
}

mesh::MeshBlock burn_block() {
  auto b = mesh::MeshBlock::structured(2, {2, 2, 4});
  add_burn_schema(b);
  return b;
}

TEST(FluidStep, PressureRelaxesTowardBurnDrivenTarget) {
  auto b = fluid_block();
  InterfaceState s;
  s.burn_rate = 0.5;  // target pressure = 1 + 4*0.5 = 3
  auto& p = b.field("pressure").data;
  p.assign(p.size(), 1.0);
  double prev_gap = std::abs(p[0] - 3.0);
  for (int i = 0; i < 50; ++i) {
    fluid_step(b, 0.01, s);
    const double gap = std::abs(p[0] - 3.0);
    EXPECT_LE(gap, prev_gap + 1e-12);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.9);  // moved substantially toward the target
}

TEST(FluidStep, AxialVelocityGrowsUnderPressure) {
  auto b = fluid_block();
  InterfaceState s;
  s.mean_pressure = 2.0;
  const double vz0 = b.field("velocity").data[2];
  fluid_step(b, 0.01, s);
  EXPECT_GT(b.field("velocity").data[2], vz0);
}

TEST(FluidStep, EquilibriumIsSteady) {
  // At pressure == 1, burn == 0 and zero velocity, nothing moves.
  auto b = fluid_block();
  b.field("pressure").data.assign(b.field("pressure").data.size(), 1.0);
  b.field("temperature").data.assign(b.field("temperature").data.size(),
                                     300.0);
  InterfaceState s;  // mean_pressure = 1, burn = 0
  const auto before = b.state_checksum();
  fluid_step(b, 0.01, s);
  EXPECT_EQ(b.state_checksum(), before);
}

TEST(SolidStep, DisplacementRespondsToPressureAndRelaxesBack) {
  auto b = solid_block();
  InterfaceState s;
  s.mean_pressure = 3.0;
  solid_step(b, 0.01, s);
  double moved = 0;
  for (double v : b.field("displacement").data) moved += std::abs(v);
  EXPECT_GT(moved, 0.0);

  // With the load removed, displacement decays toward zero.
  s.mean_pressure = 1.0;
  for (int i = 0; i < 200; ++i) solid_step(b, 0.05, s);
  double residual = 0;
  for (double v : b.field("displacement").data)
    residual = std::max(residual, std::abs(v));
  EXPECT_LT(residual, 1e-4);
}

TEST(SolidStep, SurfaceLoadAddsToTheResponse) {
  auto a = solid_block();
  auto b = solid_block();
  b.field("surface_load").data.assign(b.field("surface_load").data.size(),
                                      5.0);
  InterfaceState s;
  s.mean_pressure = 2.0;
  solid_step(a, 0.01, s);
  solid_step(b, 0.01, s);
  double da = 0, db = 0;
  for (double v : a.field("displacement").data) da += std::abs(v);
  for (double v : b.field("displacement").data) db += std::abs(v);
  EXPECT_GT(db, da);
}

TEST(BurnStep, ApnLawSteadyState) {
  // r -> a * P^n  (a=0.04, n=0.7); iterate to steady state and check.
  auto b = burn_block();
  InterfaceState s;
  s.mean_pressure = 4.0;
  for (int i = 0; i < 2000; ++i) burn_step(b, 0.01, s);
  const double expected = 0.04 * std::pow(4.0, 0.7);
  for (double r : b.field("burn_rate").data)
    EXPECT_NEAR(r, expected, 1e-6);
}

TEST(BurnStep, RateIncreasesWithPressure) {
  auto lo = burn_block();
  auto hi = burn_block();
  InterfaceState s_lo, s_hi;
  s_lo.mean_pressure = 1.0;
  s_hi.mean_pressure = 9.0;
  for (int i = 0; i < 500; ++i) {
    burn_step(lo, 0.01, s_lo);
    burn_step(hi, 0.01, s_hi);
  }
  EXPECT_GT(hi.field("burn_rate").data[0], lo.field("burn_rate").data[0]);
}

TEST(Coupling, ContributionExtractsTheRightFields) {
  auto f = fluid_block();
  f.field("pressure").data.assign(f.field("pressure").data.size(), 2.0);
  const auto cf = coupling_contribution(f);
  EXPECT_EQ(cf.block_id, 0);
  EXPECT_DOUBLE_EQ(cf.pressure_sum, 2.0 * 27);
  EXPECT_DOUBLE_EQ(cf.pressure_count, 27);
  EXPECT_DOUBLE_EQ(cf.burn_count, 0);

  auto bb = burn_block();
  bb.field("burn_rate").data.assign(bb.field("burn_rate").data.size(), 0.25);
  const auto cb = coupling_contribution(bb);
  EXPECT_DOUBLE_EQ(cb.burn_sum, 0.25 * 3);
  EXPECT_DOUBLE_EQ(cb.burn_count, 3);
  EXPECT_DOUBLE_EQ(cb.pressure_count, 0);

  auto sb = solid_block();  // neither pressure nor burn_rate
  const auto cs = coupling_contribution(sb);
  EXPECT_DOUBLE_EQ(cs.pressure_count, 0);
  EXPECT_DOUBLE_EQ(cs.burn_count, 0);
}

TEST(Coupling, ReduceComputesGlobalMeans) {
  std::vector<CouplingContribution> cs(2);
  cs[0].block_id = 0;
  cs[0].pressure_sum = 10;
  cs[0].pressure_count = 5;
  cs[1].block_id = 1;
  cs[1].pressure_sum = 2;
  cs[1].pressure_count = 1;
  cs[1].burn_sum = 3;
  cs[1].burn_count = 6;
  const auto s = reduce_coupling(cs);
  EXPECT_DOUBLE_EQ(s.mean_pressure, 12.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.burn_rate, 0.5);
}

TEST(Coupling, EmptyInputFallsBackToAmbient) {
  const auto s = reduce_coupling({});
  EXPECT_DOUBLE_EQ(s.mean_pressure, 1.0);
  EXPECT_DOUBLE_EQ(s.burn_rate, 0.0);
}

TEST(Coupling, SortedReductionIsOrderOfInputIndependentOnlyWhenSorted) {
  // The contract: callers sort by block id before reducing.  This test
  // documents why -- floating-point addition is not associative, so the
  // sorted order is the canonical one.
  std::vector<CouplingContribution> cs(3);
  cs[0] = {0, 0.1, 1, 0, 0};
  cs[1] = {1, 1e16, 1, 0, 0};
  cs[2] = {2, -1e16, 1, 0, 0};
  const double sorted_mean = reduce_coupling(cs).mean_pressure;
  std::rotate(cs.begin(), cs.begin() + 1, cs.end());  // 1e16, -1e16, 0.1
  const double shuffled_mean = reduce_coupling(cs).mean_pressure;
  // The two differ (non-associativity), which is exactly why the callers
  // gather-and-sort by block id.
  EXPECT_NE(sorted_mean, shuffled_mean);
}

TEST(Solvers, StepsAreDeterministic) {
  auto a = fluid_block();
  auto b = fluid_block();
  InterfaceState s;
  s.mean_pressure = 1.5;
  s.burn_rate = 0.1;
  for (int i = 0; i < 10; ++i) {
    fluid_step(a, 0.01, s);
    fluid_step(b, 0.01, s);
  }
  EXPECT_EQ(a.state_checksum(), b.state_checksum());
}

}  // namespace
}  // namespace roc::genx
