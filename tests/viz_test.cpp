/// \file viz_test.cpp
/// \brief Tests for the VTK export (Rocketeer-lite): merged geometry
/// counts, field sections, multi-file snapshots, and parse-back checks.

#include <gtest/gtest.h>

#include <sstream>

#include "comm/thread_comm.h"
#include "genx/orchestrator.h"
#include "mesh/generators.h"
#include "roccom/blockio.h"
#include "rochdf/rochdf.h"
#include "shdf/writer.h"
#include "viz/vtk_export.h"

namespace roc::viz {
namespace {

std::string read_all(vfs::FileSystem& fs, const std::string& path) {
  auto f = fs.open(path, vfs::OpenMode::kRead);
  std::string s(static_cast<size_t>(f->size()), '\0');
  f->read(s.data(), s.size());
  return s;
}

/// Minimal legacy-VTK structural parser: section keyword -> declared count.
std::map<std::string, size_t> parse_sections(const std::string& text) {
  std::map<std::string, size_t> out;
  std::istringstream in(text);
  std::string word;
  while (in >> word) {
    if (word == "POINTS" || word == "CELLS" || word == "CELL_TYPES" ||
        word == "POINT_DATA" || word == "CELL_DATA") {
      size_t n;
      in >> n;
      out[word] = n;
    }
  }
  return out;
}

TEST(VtkExport, SingleStructuredBlock) {
  vfs::MemFileSystem fs;
  auto b = mesh::MeshBlock::structured(0, {3, 3, 3});
  mesh::add_fluid_schema(b);
  {
    shdf::Writer w(fs, "one.shdf");
    roccom::write_block(w, "fluid", b, "all", 0.0);
  }
  const auto stats = export_window_vtk(fs, {"one.shdf"}, "fluid", "out.vtk");
  EXPECT_EQ(stats.blocks, 1u);
  EXPECT_EQ(stats.points, 27u);
  EXPECT_EQ(stats.cells, 8u);
  EXPECT_EQ(stats.point_fields, 1u);  // velocity
  EXPECT_EQ(stats.cell_fields, 2u);   // pressure, temperature

  const std::string text = read_all(fs, "out.vtk");
  EXPECT_EQ(text.rfind("# vtk DataFile Version 3.0", 0), 0u);
  const auto sections = parse_sections(text);
  EXPECT_EQ(sections.at("POINTS"), 27u);
  EXPECT_EQ(sections.at("CELLS"), 8u);
  EXPECT_EQ(sections.at("CELL_TYPES"), 8u);
  EXPECT_EQ(sections.at("POINT_DATA"), 27u);
  EXPECT_EQ(sections.at("CELL_DATA"), 8u);
  EXPECT_NE(text.find("VECTORS velocity double"), std::string::npos);
  EXPECT_NE(text.find("SCALARS pressure double 1"), std::string::npos);
}

TEST(VtkExport, CellLineCountsMatchDeclaredCounts) {
  vfs::MemFileSystem fs;
  auto b = mesh::MeshBlock::unstructured(1, 5, {0, 1, 2, 3, 1, 2, 3, 4});
  b.add_field("stress", mesh::Centering::kElement, 6);
  b.add_field("displacement", mesh::Centering::kNode, 3);
  b.add_field("surface_load", mesh::Centering::kNode, 1);
  {
    shdf::Writer w(fs, "tet.shdf");
    roccom::write_block(w, "solid", b, "all", 0.0);
  }
  const auto stats = export_window_vtk(fs, {"tet.shdf"}, "solid", "t.vtk");
  EXPECT_EQ(stats.cells, 2u);

  // Each tet line starts with "4 "; count them.
  const std::string text = read_all(fs, "t.vtk");
  size_t tet_lines = 0;
  std::istringstream in(text);
  std::string line;
  bool in_cells = false;
  while (std::getline(in, line)) {
    if (line.rfind("CELLS", 0) == 0) {
      in_cells = true;
      continue;
    }
    if (line.rfind("CELL_TYPES", 0) == 0) in_cells = false;
    if (in_cells && line.rfind("4 ", 0) == 0) ++tet_lines;
  }
  EXPECT_EQ(tet_lines, 2u);
}

TEST(VtkExport, MergesBlocksAcrossFilesWithOffsets) {
  vfs::MemFileSystem fs;
  auto b0 = mesh::MeshBlock::structured(0, {2, 2, 2});
  auto b1 = mesh::MeshBlock::structured(1, {2, 2, 2});
  mesh::add_fluid_schema(b0);
  mesh::add_fluid_schema(b1);
  {
    shdf::Writer w(fs, "part_p0000.shdf");
    roccom::write_block(w, "fluid", b0, "all", 0.0);
  }
  {
    shdf::Writer w(fs, "part_p0001.shdf");
    roccom::write_block(w, "fluid", b1, "all", 0.0);
  }
  const auto stats = export_snapshot_vtk(fs, "part", "fluid", "m.vtk");
  EXPECT_EQ(stats.blocks, 2u);
  EXPECT_EQ(stats.points, 16u);
  EXPECT_EQ(stats.cells, 2u);

  // The second block's cell must reference nodes >= 8 (offsetting works).
  const std::string text = read_all(fs, "m.vtk");
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> cell_lines;
  bool in_cells = false;
  while (std::getline(in, line)) {
    if (line.rfind("CELLS", 0) == 0) {
      in_cells = true;
      continue;
    }
    if (line.rfind("CELL_TYPES", 0) == 0) in_cells = false;
    else if (in_cells) cell_lines.push_back(line);
  }
  ASSERT_EQ(cell_lines.size(), 2u);
  EXPECT_NE(cell_lines[1].find("15"), std::string::npos);
}

TEST(VtkExport, MissingWindowThrows) {
  vfs::MemFileSystem fs;
  auto b = mesh::MeshBlock::structured(0, {2, 2, 2});
  {
    shdf::Writer w(fs, "x.shdf");
    roccom::write_block(w, "fluid", b, "mesh", 0.0);
  }
  EXPECT_THROW(
      (void)export_window_vtk(fs, {"x.shdf"}, "solid", "o.vtk"),
      InvalidArgument);
  EXPECT_THROW((void)export_snapshot_vtk(fs, "nope", "fluid", "o.vtk"),
               InvalidArgument);
}

TEST(VtkExport, FullGenxSnapshotAllWindows) {
  // End-to-end: run mini-GENx, export every window of the final snapshot.
  vfs::MemFileSystem fs;
  comm::World::run(2, [&](comm::Comm& comm) {
    comm::RealEnv env;
    rochdf::Rochdf io(comm, env, fs, rochdf::Options{});
    genx::GenxConfig cfg;
    cfg.mesh_spec.fluid_blocks = 4;
    cfg.mesh_spec.solid_blocks = 3;
    cfg.mesh_spec.base_block_nodes = 5;
    cfg.steps = 10;
    cfg.snapshot_interval = 10;
    cfg.run_name = "viz";
    genx::GenxRun run(comm, env, io, cfg);
    run.init_fresh();
    run.run();
  });

  for (const char* window : {"fluid", "solid", "burn"}) {
    const auto stats = export_snapshot_vtk(fs, "viz_snap_000010", window,
                                           std::string(window) + ".vtk");
    EXPECT_GT(stats.points, 0u) << window;
    EXPECT_GT(stats.cells, 0u) << window;
    const auto sections =
        parse_sections(read_all(fs, std::string(window) + ".vtk"));
    EXPECT_EQ(sections.at("POINTS"), stats.points) << window;
    EXPECT_EQ(sections.at("CELLS"), stats.cells) << window;
  }
}

}  // namespace
}  // namespace roc::viz
