/// \file rochdf_test.cpp
/// \brief Tests for Rochdf (individual I/O) and T-Rochdf (background I/O
/// thread): per-process files, buffer-reuse safety, snapshot back-pressure,
/// sync semantics, restart via fetch_blocks/list_panes.

#include <gtest/gtest.h>

#include <numeric>

#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "rochdf/rochdf.h"
#include "shdf/reader.h"
#include "vfs/vfs.h"

namespace roc::rochdf {
namespace {

using roccom::IoRequest;
using roccom::Roccom;


/// Piecewise name concatenation: `"lit" + std::to_string(...)` trips
/// GCC 12's bogus -Wrestrict at -O3 (PR105651).
std::string snap_name(const char* prefix, int snap, const char* suffix = "") {
  std::string n = prefix;
  n += std::to_string(snap);
  n += suffix;
  return n;
}

mesh::MeshBlock make_block(int id, int n = 4) {
  auto b = mesh::MeshBlock::structured(id, {n, n, n});
  mesh::add_fluid_schema(b);
  auto& p = b.field("pressure");
  std::iota(p.data.begin(), p.data.end(), static_cast<double>(id * 10000));
  for (size_t i = 0; i < b.coords().size(); ++i)
    b.coords()[i] = static_cast<double>(id) + 0.001 * static_cast<double>(i);
  return b;
}

/// Fixture parameterized over {non-threaded, threaded}.
class RochdfTest : public ::testing::TestWithParam<bool> {
 protected:
  Options opts() const {
    Options o;
    o.threaded = GetParam();
    return o;
  }
};

TEST_P(RochdfTest, FileNaming) {
  EXPECT_EQ(Rochdf::proc_file("", "snap_1", 3), "snap_1_p0003.shdf");
  EXPECT_EQ(Rochdf::proc_file("out/", "snap_1", 12), "out/snap_1_p0012.shdf");
}

TEST_P(RochdfTest, OneFilePerProcessPerSnapshot) {
  vfs::MemFileSystem fs;
  comm::World::run(4, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(comm.rank());
    w.register_pane(comm.rank(), &b);

    Rochdf io(comm, env, fs, opts());
    io.write_attribute(com, IoRequest{"fluid", "all", "snap_000", 0.0});
    io.sync();
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(fs.list("snap_000_p").size(), 4u);
    }
  });
}

TEST_P(RochdfTest, WriteReadRoundTrip) {
  vfs::MemFileSystem fs;
  comm::World::run(2, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b1 = make_block(comm.rank() * 2);
    auto b2 = make_block(comm.rank() * 2 + 1, 5);
    w.register_pane(b1.id(), &b1);
    w.register_pane(b2.id(), &b2);
    const auto crc1 = b1.state_checksum();
    const auto crc2 = b2.state_checksum();

    Rochdf io(comm, env, fs, opts());
    io.write_attribute(com, IoRequest{"fluid", "all", "rt", 1.0});
    io.sync();

    // Clobber, then restore.
    b1.field("pressure").data.assign(b1.field("pressure").data.size(), -9.0);
    b2.coords().assign(b2.coords().size(), -9.0);
    io.read_attribute(com, IoRequest{"fluid", "all", "rt", 1.0});
    EXPECT_EQ(b1.state_checksum(), crc1);
    EXPECT_EQ(b2.state_checksum(), crc2);
  });
}

TEST_P(RochdfTest, BufferReuseSafety) {
  // The paper's transparency contract: mutate the block immediately after
  // write_attribute returns; the file must hold the pre-mutation values.
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(0);
    w.register_pane(0, &b);
    const auto saved = b.field("pressure").data;

    Rochdf io(comm, env, fs, opts());
    io.write_attribute(com, IoRequest{"fluid", "all", "reuse", 0.0});
    // Mutate instantly -- the service must have copied or written already.
    b.field("pressure").data.assign(b.field("pressure").data.size(), 1e9);
    io.sync();

    shdf::Reader r(fs, "reuse_p0000.shdf");
    EXPECT_EQ(r.read<double>("fluid/block_000000/field:pressure"), saved);
  });
}

TEST_P(RochdfTest, MultipleModulesAppendToOneSnapshotFile) {
  // Back-to-back write requests from different windows within one snapshot
  // end up in the same per-process file (the paper's multi-component
  // output phase).
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& wf = com.create_window("fluid");
    auto& ws = com.create_window("solid");
    auto bf = make_block(0);
    auto bs = make_block(1);
    wf.register_pane(0, &bf);
    ws.register_pane(1, &bs);

    Rochdf io(comm, env, fs, opts());
    io.write_attribute(com, IoRequest{"fluid", "all", "multi", 0.0});
    io.write_attribute(com, IoRequest{"solid", "all", "multi", 0.0});
    io.sync();

    shdf::Reader r(fs, "multi_p0000.shdf");
    EXPECT_EQ(roccom::pane_ids_in_file(r, "fluid"), std::vector<int>{0});
    EXPECT_EQ(roccom::pane_ids_in_file(r, "solid"), std::vector<int>{1});
    EXPECT_EQ(fs.file_count(), 1u);
  });
}

TEST_P(RochdfTest, SelectiveAttributeWrite) {
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(0);
    w.register_pane(0, &b);

    Rochdf io(comm, env, fs, opts());
    io.write_attribute(com, IoRequest{"fluid", "pressure", "sel", 0.0});
    io.sync();
    shdf::Reader r(fs, "sel_p0000.shdf");
    EXPECT_TRUE(r.has_dataset("fluid/block_000000/field:pressure"));
    EXPECT_FALSE(r.has_dataset("fluid/block_000000/coords"));
  });
}

TEST_P(RochdfTest, SuccessiveSnapshotsAllComplete) {
  vfs::MemFileSystem fs;
  comm::World::run(2, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(comm.rank());
    w.register_pane(comm.rank(), &b);

    Rochdf io(comm, env, fs, opts());
    for (int snap = 0; snap < 5; ++snap) {
      // Each snapshot captures a different field value.
      b.field("pressure").data.assign(b.field("pressure").data.size(),
                                      static_cast<double>(snap));
      io.write_attribute(
          com, IoRequest{"fluid", "all", snap_name("s", snap),
                         static_cast<double>(snap)});
    }
    io.sync();
    for (int snap = 0; snap < 5; ++snap) {
      shdf::Reader r(fs, Rochdf::proc_file("", snap_name("s", snap),
                                           comm.rank()));
      const auto p = r.read<double>(
          roccom::block_prefix("fluid", comm.rank()) + "field:pressure");
      EXPECT_EQ(p[0], static_cast<double>(snap))
          << "snapshot " << snap << " holds wrong data";
    }
  });
}

TEST_P(RochdfTest, FetchBlocksAcrossDifferentProcessCount) {
  // Written with 4 processes, fetched with 2 -- Rochdf scans all files.
  vfs::MemFileSystem fs;
  comm::World::run(4, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(comm.rank());
    w.register_pane(comm.rank(), &b);
    Rochdf io(comm, env, fs, opts());
    io.write_attribute(com, IoRequest{"fluid", "all", "fetch", 0.0});
    io.sync();
  });
  comm::World::run(2, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Rochdf io(comm, env, fs, opts());
    EXPECT_EQ(io.list_panes("fetch"), (std::vector<int>{0, 1, 2, 3}));
    // Each new process claims two blocks.
    const std::vector<int> mine = comm.rank() == 0 ? std::vector<int>{0, 1}
                                                   : std::vector<int>{2, 3};
    const auto blocks = io.fetch_blocks("fetch", mine);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].id(), mine[0]);
    EXPECT_EQ(blocks[1].id(), mine[1]);
    EXPECT_EQ(blocks[0].state_checksum(), make_block(mine[0]).state_checksum());
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, RochdfTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Threaded" : "Plain";
                         });

// --- T-Rochdf-specific semantics ---------------------------------------------

TEST(TRochdf, VisibleCallDoesNotWriteSynchronously) {
  // After write_attribute returns (without sync), the data may not be on
  // "disk" yet -- but after sync it must be.
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(0, 12);
    w.register_pane(0, &b);

    Options o;
    o.threaded = true;
    Rochdf io(comm, env, fs, o);
    io.write_attribute(com, IoRequest{"fluid", "all", "bg", 0.0});
    const auto st = io.stats();
    EXPECT_EQ(st.write_calls, 1u);
    EXPECT_GT(st.bytes_buffered, 0u);
    io.sync();
    EXPECT_TRUE(fs.exists("bg_p0000.shdf"));
    EXPECT_EQ(io.stats().blocks_written, 1u);
  });
}

TEST(TRochdf, AtMostOneSnapshotInFlight) {
  // Queue many snapshots back-to-back; the per-snapshot back-pressure
  // guarantees they are all written completely and in order.
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(0, 10);
    w.register_pane(0, &b);

    Options o;
    o.threaded = true;
    Rochdf io(comm, env, fs, o);
    for (int snap = 0; snap < 8; ++snap) {
      b.field("pressure").data.assign(b.field("pressure").data.size(),
                                      static_cast<double>(snap));
      io.write_attribute(com,
                         IoRequest{"fluid", "all", snap_name("q", snap),
                                   static_cast<double>(snap)});
    }
    io.sync();
    for (int snap = 0; snap < 8; ++snap) {
      shdf::Reader r(fs, snap_name("q", snap, "_p0000.shdf"));
      EXPECT_EQ(r.read<double>("fluid/block_000000/field:pressure")[0],
                static_cast<double>(snap));
    }
  });
}

TEST(TRochdf, DestructorDrainsOutstandingWrites) {
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(0);
    w.register_pane(0, &b);
    {
      Options o;
      o.threaded = true;
      Rochdf io(comm, env, fs, o);
      io.write_attribute(com, IoRequest{"fluid", "all", "drop", 0.0});
      // no sync -- destructor must not lose the snapshot
    }
    shdf::Reader r(fs, "drop_p0000.shdf");
    EXPECT_EQ(roccom::pane_ids_in_file(r, "fluid"), std::vector<int>{0});
  });
}

TEST(TRochdf, SyncIsIdempotentAndReentrant) {
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b = make_block(0);
    w.register_pane(0, &b);
    Options o;
    o.threaded = true;
    Rochdf io(comm, env, fs, o);
    io.sync();  // nothing outstanding
    io.write_attribute(com, IoRequest{"fluid", "all", "x", 0.0});
    io.sync();
    io.sync();
    EXPECT_TRUE(fs.exists("x_p0000.shdf"));
  });
}

TEST(Rochdf, StatsAccumulate) {
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    Roccom com;
    auto& w = com.create_window("fluid");
    auto b1 = make_block(0);
    auto b2 = make_block(1);
    w.register_pane(0, &b1);
    w.register_pane(1, &b2);
    Rochdf io(comm, env, fs, Options{});
    io.write_attribute(com, IoRequest{"fluid", "all", "s1", 0.0});
    io.write_attribute(com, IoRequest{"fluid", "all", "s2", 0.0});
    const auto st = io.stats();
    EXPECT_EQ(st.write_calls, 2u);
    EXPECT_EQ(st.blocks_written, 4u);
    EXPECT_EQ(st.files_written, 2u);
  });
}

}  // namespace
}  // namespace roc::rochdf
