/// \file telemetry_test.cpp
/// \brief Tests for src/telemetry/: metrics (counter sharding, histogram
/// "le" bucket edges, registry export), trace spans on the swappable
/// clock, Chrome-trace JSON well-formedness (checked with a strict JSON
/// parser), the per-snapshot timeline arithmetic (synthetic traces and the
/// real T-Rochdf pipeline on the simulator), and the log satellites
/// (ROC_LOG single evaluation, ScopedLogCapture, the error->instant
/// mirror).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "rochdf/rochdf.h"
#include "sim/platform.h"
#include "sim/sim_comm.h"
#include "sim/sim_env.h"
#include "sim/sim_fs.h"
#include "sim/simulation.h"
#include "telemetry/clock.h"
#include "telemetry/flight.h"
#include "telemetry/metrics.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"
#include "util/error.h"
#include "util/log.h"
#include "util/log_capture.h"
#include "util/thread.h"

namespace roc::telemetry {
namespace {

// --- a strict JSON acceptor -------------------------------------------------
// Small recursive-descent validator (RFC 8259 grammar, no extensions): the
// trace files must load in chrome://tracing, so "mostly JSON" is not
// enough.  Returns false on any syntax violation, including trailing
// garbage, unescaped control characters and bad \u escapes.

class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.i_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& t) : t_(t) {}

  [[nodiscard]] bool eof() const { return i_ >= t_.size(); }
  [[nodiscard]] char peek() const { return t_[i_]; }
  bool eat(char c) {
    if (eof() || t_[i_] != c) return false;
    ++i_;
    return true;
  }
  void ws() {
    while (!eof() && (t_[i_] == ' ' || t_[i_] == '\t' || t_[i_] == '\n' ||
                      t_[i_] == '\r'))
      ++i_;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p)
      if (!eat(*p)) return false;
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(t_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++i_;
        if (eof()) return false;
        const char e = t_[i_];
        if (e == 'u') {
          ++i_;
          for (int k = 0; k < 4; ++k, ++i_)
            if (eof() || std::isxdigit(static_cast<unsigned char>(t_[i_])) == 0)
              return false;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't')
          return false;
        ++i_;
        continue;
      }
      ++i_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = i_;
    (void)eat('-');
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
      return false;
    if (!eat('0'))
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++i_;
    if (!eof() && peek() == '.') {
      ++i_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++i_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++i_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++i_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
        ++i_;
    }
    return i_ > start;
  }

  const std::string& t_;
  std::size_t i_ = 0;
};

TEST(JsonCheckerSelf, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a": [1, -2.5e3, "x\n", true, null]})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a": 1,})"));     // trailing comma
  EXPECT_FALSE(JsonChecker::valid("{\"a\": \"\t\"}"));  // raw control char
  EXPECT_FALSE(JsonChecker::valid(R"({"a": 01})"));     // leading zero
  EXPECT_FALSE(JsonChecker::valid(R"({"a": 1} x)"));    // trailing garbage
  EXPECT_FALSE(JsonChecker::valid(R"("bad \q escape")"));
}

// --- metrics ----------------------------------------------------------------

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddPeak) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.record_peak(5);   // below current max
  g.record_peak(99);
  EXPECT_EQ(g.value(), 99);
  g.record_peak(50);  // peaks never regress
  EXPECT_EQ(g.value(), 99);
}

TEST(Histogram, LeBucketEdgesAreInclusive) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);    // (-inf, 1]
  h.observe(1.0);    // (-inf, 1]  -- exactly on the edge
  h.observe(1.5);    // (1, 10]
  h.observe(10.0);   // (1, 10]    -- exactly on the edge
  h.observe(10.5);   // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 2u);
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 10.0 + 10.5);

  h.reset();
  const auto z = h.snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_DOUBLE_EQ(z.sum, 0.0);
  for (const auto n : z.counts) EXPECT_EQ(n, 0u);
}

TEST(Histogram, DefaultBoundsAreSortedAndSpanTheRange) {
  for (const auto& bounds : {default_time_bounds(), default_size_bounds()}) {
    ASSERT_GE(bounds.size(), 2u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
      EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(default_time_bounds().front(), 1e-6);
  EXPECT_GE(default_time_bounds().back(), 30.0);
}

TEST(MetricsRegistry, LookupReturnsStableIdentity) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("x.seconds", {1.0, 2.0});
  Histogram& h2 = reg.histogram("x.seconds", {99.0});  // bounds ignored now
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.snapshot().bounds.size(), 2u);
}

TEST(MetricsRegistry, SnapshotResetAndText) {
  MetricsRegistry reg;
  reg.counter("b.count").add(3);
  reg.counter("a.count").add(1);
  reg.gauge("q.depth").set(-2);
  reg.histogram("t.seconds", {1.0}).observe(0.5);

  const auto s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a.count");  // sorted by name
  EXPECT_EQ(s.counters[1].second, 3u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, -2);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count, 1u);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("a.count 1"), std::string::npos);
  EXPECT_NE(text.find("b.count 3"), std::string::npos);
  EXPECT_NE(text.find("t.seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("t.seconds_bucket{le="), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.counter("b.count").value(), 0u);
  EXPECT_EQ(reg.gauge("q.depth").value(), 0);
  EXPECT_EQ(reg.histogram("t.seconds").snapshot().count, 0u);
}

TEST(MetricsRegistry, ToJsonIsStrictlyValid) {
  MetricsRegistry reg;
  reg.counter("a \"quoted\"\\name").add(7);  // LINT-ALLOW(metric-name)
  reg.gauge("g").set(-5);
  reg.histogram("h.seconds", {0.5, 1.5}).observe(2.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --- clock ------------------------------------------------------------------

class FixedClock final : public ClockSource {
 public:
  explicit FixedClock(double t) : t_(t) {}
  [[nodiscard]] double now() const override { return t_; }
  double t_;
};

TEST(Clock, ScopedClockInstallsAndRestores) {
  const double wall_before = now();
  {
    FixedClock fixed(1234.5);
    ScopedClock scoped(&fixed);
    EXPECT_DOUBLE_EQ(now(), 1234.5);
    fixed.t_ = 2000.0;
    EXPECT_DOUBLE_EQ(now(), 2000.0);
  }
  // Back on the wall clock: monotonic, and nowhere near the fake values.
  const double wall_after = now();
  EXPECT_GE(wall_after, wall_before);
  EXPECT_LT(wall_after, 1000.0);
}

// --- trace ------------------------------------------------------------------

/// Enables tracing for a scope and drops anything recorded before it.
struct ScopedTracing {
  ScopedTracing() {
    (void)collect_trace();
    set_trace_enabled(true);
  }
  ~ScopedTracing() { set_trace_enabled(false); }
};

TEST(TraceTest, SpanRecordsDurationOnTelemetryClock) {
  FixedClock fixed(10.0);
  ScopedClock scoped(&fixed);
  ScopedTracing tracing;
  set_thread_name("trace test");
  {
    Span span("test", "outer", "payload");
    fixed.t_ = 12.5;
  }
  record_instant("test", "mark");
  const Trace t = collect_trace();
  ASSERT_EQ(t.events.size(), 2u);
  const TraceEvent& span = t.events[0];
  EXPECT_STREQ(span.name, "outer");
  EXPECT_DOUBLE_EQ(span.ts, 10.0);
  EXPECT_DOUBLE_EQ(span.dur, 2.5);
  EXPECT_EQ(span.detail, "payload");
  EXPECT_LT(t.events[1].dur, 0.0);  // instant
  ASSERT_EQ(t.thread_names.count(span.tid), 1u);
  EXPECT_EQ(t.thread_names.at(span.tid), "trace test");
  EXPECT_EQ(t.dropped, 0u);
}

TEST(TraceTest, DisabledRecordsNothing) {
  (void)collect_trace();
  ASSERT_FALSE(trace_enabled());
  {
    ROC_TRACE_SPAN("test", "ignored");
    ROC_TRACE_INSTANT("test", "ignored");
  }
  EXPECT_TRUE(collect_trace().empty());
}

TEST(TraceTest, ChromeJsonIsStrictlyValidWithHostileStrings) {
  Trace t;
  TraceEvent e;
  e.category = "cat";
  e.name = "span";
  e.detail = "quote \" backslash \\ newline \n tab \t ctrl \x01 done";
  e.ts = 1.0;
  e.dur = 0.5;
  e.tid = 1;
  t.events.push_back(e);
  TraceEvent i = e;
  i.name = "instant";
  i.dur = -1.0;
  t.events.push_back(i);
  t.thread_names[1] = "thread \"one\"\\";

  std::ostringstream os;
  write_chrome_trace(os, {{"label \"A\"", t}, {"label B", Trace{}}});
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceTest, WriterProducesLoadableFile) {
  Trace t;
  TraceEvent e;
  e.category = "c";
  e.name = "n";
  e.ts = 0.25;
  e.dur = 0.25;
  e.tid = 3;
  t.events.push_back(e);

  const std::string path =
      testing::TempDir() + "/telemetry_test_trace.json";
  TraceWriter w(path);
  w.add("run", std::move(t));
  ASSERT_TRUE(w.write());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(JsonChecker::valid(buf.str())) << buf.str();
  std::remove(path.c_str());
}

TraceEvent span_event(const char* cat, const char* name, std::string detail,
                      double ts, double dur, int tid) {
  TraceEvent e;
  e.category = cat;
  e.name = name;
  e.detail = std::move(detail);
  e.ts = ts;
  e.dur = dur;
  e.tid = tid;
  return e;
}

TEST(TraceTest, FlowEventsLinkCrossThreadParentChild) {
  // Parent span on tid 1; one child on tid 2 (cross-thread: needs an
  // arrow), one child on tid 1 (same-thread nesting: must NOT get one).
  Trace t;
  TraceEvent parent = span_event("client", "snapshot.perceived", "s", 0.0,
                                 4.0, 1);
  parent.trace_id = 7;
  parent.span_id = 100;
  TraceEvent remote = span_event("server", "snapshot.background", "s", 1.0,
                                 2.0, 2);
  remote.trace_id = 7;
  remote.span_id = 101;
  remote.parent_id = 100;
  TraceEvent local = span_event("client", "marshal", "", 0.5, 0.5, 1);
  local.trace_id = 7;
  local.span_id = 102;
  local.parent_id = 100;
  t.events.push_back(parent);
  t.events.push_back(remote);
  t.events.push_back(local);

  std::ostringstream os;
  write_chrome_trace(os, {{"flow", t}});
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;

  const auto count = [&json](const std::string& needle) {
    int n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1))
      ++n;
    return n;
  };
  // Exactly one s/f pair, carrying the child's span id, at the right
  // threads, binding to the enclosing slice.
  EXPECT_EQ(count("\"ph\":\"s\""), 1);
  EXPECT_EQ(count("\"ph\":\"f\""), 1);
  EXPECT_NE(json.find("{\"ph\":\"s\",\"id\":101,\"pid\":1,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"f\",\"bp\":\"e\",\"id\":101,\"pid\":1,"
                      "\"tid\":2"),
            std::string::npos);
  EXPECT_EQ(count("\"cat\":\"flow\""), 2);
  // The causal ids ride on the spans' args.
  EXPECT_NE(json.find("\"trace_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":101"), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\":100"), std::string::npos);
}

TEST(TraceTest, FlowStartIsClampedIntoTheParentWindow) {
  // A deferred child that starts AFTER its parent span closed: the flow
  // start must be clamped to the parent's end so viewers accept the pair.
  Trace t;
  TraceEvent parent = span_event("client", "snapshot.perceived", "s", 0.0,
                                 1.0, 1);
  parent.trace_id = 9;
  parent.span_id = 200;
  TraceEvent child = span_event("server", "snapshot.background", "s", 5.0,
                                1.0, 2);
  child.trace_id = 9;
  child.span_id = 201;
  child.parent_id = 200;
  t.events.push_back(parent);
  t.events.push_back(child);

  std::ostringstream os;
  write_chrome_trace(os, {{"clamp", t}});
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  // s at the parent's end (1.0 s = 1e6 us), f at the child's start.
  EXPECT_NE(json.find("{\"ph\":\"s\",\"id\":201,\"pid\":1,\"tid\":1,"
                      "\"ts\":1e+06"),
            std::string::npos)
      << json;
}

/// Two identical sim-clock runs, with reset_trace_identity_for_replay()
/// between them, must serialize to bit-identical Chrome traces: thread
/// ids, trace/span ids and (virtual) timestamps all restart.
TEST(TraceTest, SimReplaysSerializeBitIdentically) {
#if defined(ROCPIO_TELEMETRY_DISABLED)
  GTEST_SKIP() << "trace macros compiled out (ROCPIO_TELEMETRY=OFF)";
#else
  const auto one_replay = [] {
    reset_trace_identity_for_replay();
    ScopedTracing tracing;
    sim::Platform p;
    p.node.cpus = 2;
    sim::Simulation sim(p);
    auto fs = std::make_shared<sim::SimFileSystem>(sim);
    auto world = std::make_shared<sim::SimWorld>(sim, 1);
    sim.add_process([world, fs](sim::ProcContext& ctx) {
      auto comm = world->attach();
      sim::SimEnv env(ctx.sim());
      roccom::Roccom com;
      auto& w = com.create_window("fluid");
      auto b = mesh::MeshBlock::structured(0, {8, 8, 8});
      mesh::add_fluid_schema(b);
      w.register_pane(b.id(), &b);

      rochdf::Options o;
      o.threaded = true;
      rochdf::Rochdf io(*comm, env, *fs, o);
      io.write_attribute(com, roccom::IoRequest{"fluid", "all", "rp", 0.0});
      ctx.compute(5.0);
      io.sync();
    });
    sim.run();
    std::ostringstream os;
    write_chrome_trace(os, {{"replay", collect_trace()}});
    return os.str();
  };

  const std::string first = one_replay();
  const std::string second = one_replay();
  EXPECT_TRUE(JsonChecker::valid(first)) << first;
  // Real causal content, not two empty runs.
  EXPECT_NE(first.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(first.find("\"trace_id\""), std::string::npos);
  EXPECT_EQ(first, second);
#endif
}

// --- timeline ---------------------------------------------------------------

TEST(Timeline, SyntheticArithmetic) {
  Trace t;
  // Client perceives [0,2]; the writer works [1,4]; 1s of vfs write inside.
  t.events.push_back(
      span_event("rochdf", "snapshot.perceived", "s1", 0.0, 2.0, 1));
  t.events.push_back(
      span_event("rochdf", "snapshot.background", "s1", 1.0, 3.0, 2));
  t.events.push_back(span_event("vfs", "write", "", 2.0, 1.0, 2));

  const auto tl = snapshot_timelines(t);
  ASSERT_EQ(tl.size(), 1u);
  const SnapshotTimeline& s = tl[0];
  EXPECT_EQ(s.base, "s1");
  EXPECT_DOUBLE_EQ(s.start, 0.0);
  EXPECT_DOUBLE_EQ(s.end, 4.0);
  EXPECT_DOUBLE_EQ(s.wall_s, 4.0);
  EXPECT_DOUBLE_EQ(s.perceived_s, 2.0);
  EXPECT_DOUBLE_EQ(s.background_s, 3.0);
  EXPECT_DOUBLE_EQ(s.hidden_s, 2.0);  // [2,4]: background minus overlap
  EXPECT_DOUBLE_EQ(s.raw_write_s, 1.0);
  EXPECT_EQ(s.client_threads, 1);
  EXPECT_EQ(s.writer_threads, 1);
  // The Fig. 3 identity for a writer that starts inside the perceived span.
  EXPECT_NEAR(s.perceived_s + s.hidden_s, s.wall_s, 1e-12);
}

TEST(Timeline, PerceivedIsMaxAcrossRanksAndSnapshotsAreSorted) {
  Trace t;
  // Two ranks write snapshot "b" concurrently; the visible cost is the
  // slower rank (3s), not the sum.  Snapshot "a" starts later.
  t.events.push_back(
      span_event("client", "snapshot.perceived", "b", 0.0, 2.0, 1));
  t.events.push_back(
      span_event("client", "snapshot.perceived", "b", 0.0, 3.0, 2));
  t.events.push_back(
      span_event("client", "snapshot.perceived", "a", 10.0, 1.0, 1));
  // A vfs write on a thread with no background span: attributed nowhere.
  t.events.push_back(span_event("vfs", "write", "", 0.5, 0.5, 3));

  const auto tl = snapshot_timelines(t);
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].base, "b");
  EXPECT_EQ(tl[1].base, "a");
  EXPECT_DOUBLE_EQ(tl[0].perceived_s, 3.0);
  EXPECT_EQ(tl[0].client_threads, 2);
  EXPECT_DOUBLE_EQ(tl[0].background_s, 0.0);
  EXPECT_DOUBLE_EQ(tl[0].hidden_s, 0.0);
  EXPECT_DOUBLE_EQ(tl[0].raw_write_s, 0.0);
}

/// The end-to-end check on the simulated substrate: a T-Rochdf snapshot
/// whose background write overlaps compute.  The timeline must (a) run on
/// virtual time, (b) hide most of the write, and (c) satisfy the Fig. 3
/// identity perceived + hidden ~= wall within 5%.
TEST(Timeline, TRochdfOnSimSatisfiesTheFig3Identity) {
#if defined(ROCPIO_TELEMETRY_DISABLED)
  GTEST_SKIP() << "trace macros compiled out (ROCPIO_TELEMETRY=OFF)";
#else
  ScopedTracing tracing;
  sim::Platform p;
  p.node.cpus = 2;
  sim::Simulation sim(p);
  auto fs = std::make_shared<sim::SimFileSystem>(sim);
  auto world = std::make_shared<sim::SimWorld>(sim, 1);
  sim.add_process([world, fs](sim::ProcContext& ctx) {
    auto comm = world->attach();
    sim::SimEnv env(ctx.sim());
    roccom::Roccom com;
    auto& w = com.create_window("fluid");
    auto b = mesh::MeshBlock::structured(0, {8, 8, 8});
    mesh::add_fluid_schema(b);
    w.register_pane(b.id(), &b);

    rochdf::Options o;
    o.threaded = true;
    rochdf::Rochdf io(*comm, env, *fs, o);
    io.write_attribute(com, roccom::IoRequest{"fluid", "all", "tl", 0.0});
    ctx.compute(5.0);  // overlap window for the background write
    io.sync();
  });
  sim.run();

  const Trace trace = collect_trace();
  const auto tl = snapshot_timelines(trace);
  ASSERT_EQ(tl.size(), 1u);
  const SnapshotTimeline& s = tl[0];
  EXPECT_EQ(s.base, "tl");
  // Virtual time: the whole snapshot fits inside the ~5 s simulated run.
  EXPECT_LT(s.end, 10.0);
  EXPECT_GT(s.wall_s, 0.0);
  // Active buffering hid the write: the background work dwarfs the
  // perceived marshal cost, and the raw vfs writes happened inside it.
  EXPECT_GT(s.hidden_s, s.perceived_s);
  EXPECT_GT(s.raw_write_s, 0.0);
  EXPECT_LE(s.raw_write_s, s.background_s + 1e-9);
  EXPECT_EQ(s.client_threads, 1);
  EXPECT_EQ(s.writer_threads, 1);
  EXPECT_NEAR(s.perceived_s + s.hidden_s, s.wall_s, 0.05 * s.wall_s);
#endif
}

// --- flight recorder --------------------------------------------------------

#if !defined(ROCPIO_TELEMETRY_DISABLED)

/// Enables the flight recorder for a scope; restores off + no dump path.
struct ScopedFlight {
  explicit ScopedFlight(const std::string& dump_path = {}) {
    flight::set_dump_path(dump_path.empty() ? nullptr : dump_path.c_str());
    flight::set_enabled(true);
  }
  ~ScopedFlight() {
    flight::set_enabled(false);
    flight::set_dump_path(nullptr);
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FlightRecorder, DumpIsSelfContainedValidJson) {
  const std::string path = testing::TempDir() + "/flight_dump.json";
  ScopedFlight flight_on;
  flight::set_thread_name("dump test");
  {
    // Spans feed the recorder even with tracing itself disabled.
    ASSERT_FALSE(trace_enabled());
    Span s("test", "flight.span", "payload");
  }
  flight::record(flight::EventKind::kInstant, "test", "flight.instant",
                 now(), 0, "detail \"quoted\"\\");
  ASSERT_TRUE(flight::dump_now("on demand", path.c_str()));

  const std::string json = slurp(path);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"flight_recorder\":true"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"on demand\""), std::string::npos);
  EXPECT_NE(json.find("\"dump test\""), std::string::npos);
  EXPECT_NE(json.find("\"span_begin\""), std::string::npos);
  EXPECT_NE(json.find("\"span_end\""), std::string::npos);
  EXPECT_NE(json.find("\"flight.span\""), std::string::npos);
  EXPECT_NE(json.find("\"flight.instant\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RingOverflowKeepsTheNewestEvents) {
  const std::string path = testing::TempDir() + "/flight_overflow.json";
  ScopedFlight flight_on;
  const std::uint64_t before = flight::events_recorded();
  for (std::size_t i = 0; i < flight::kFlightRingCapacity + 10; ++i) {
    flight::record(flight::EventKind::kInstant, "test", "overflow", now(), 0,
                   std::to_string(i).c_str());
  }
  EXPECT_EQ(flight::events_recorded() - before,
            flight::kFlightRingCapacity + 10);
  ASSERT_TRUE(flight::dump_now("overflow", path.c_str()));
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  // The newest event survived; this thread reports dropped events.
  const std::string newest = std::to_string(flight::kFlightRingCapacity + 9);
  EXPECT_NE(json.find("\"detail\":\"" + newest + "\""), std::string::npos);
  EXPECT_EQ(json.find("\"dropped\":0,\"events\":[{\"kind\":\"instant\","
                      "\"cat\":\"test\",\"name\":\"overflow\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RequireFailureDumpsWhenPathConfigured) {
  const std::string path = testing::TempDir() + "/flight_require.json";
  std::remove(path.c_str());
  ScopedFlight flight_on(path);
  EXPECT_THROW(require(false, "planted telemetry-test failure"),
               InvalidArgument);
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty()) << "require failure did not dump to " << path;
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"reason\":\"require failure\""), std::string::npos);
  EXPECT_NE(json.find("planted telemetry-test failure"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RequireFailureWithoutPathDoesNotDump) {
  ScopedFlight flight_on;  // enabled, but no dump path configured
  const std::uint64_t before = flight::events_recorded();
  EXPECT_THROW(require(false, "quiet failure"), InvalidArgument);
  // The failure still lands in the ring for a later crash dump...
  EXPECT_GT(flight::events_recorded(), before);
  // ...but no rocpio-flight.json appears in the working directory (the
  // routine error-path case must not litter).  dump_now was not called, so
  // nothing to clean up here -- the assertion is the absence of a throw-
  // time side effect, covered by the configured-path test above.
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  ASSERT_FALSE(flight::enabled());
  const std::uint64_t before = flight::events_recorded();
  flight::record(flight::EventKind::kInstant, "test", "off", now(), 0,
                 nullptr);
  { Span s("test", "off"); }
  EXPECT_EQ(flight::events_recorded(), before);
}

// --- watchdog ---------------------------------------------------------------

TEST(Watchdog, MissedHeartbeatDumpsEveryThreadOnce) {
  watchdog::reset_for_testing();
  const std::string path = testing::TempDir() + "/flight_watchdog.json";
  std::remove(path.c_str());
  ScopedFlight flight_on(path);
  ScopedLogCapture capture(LogLevel::kDebug);  // keep stderr quiet
  FixedClock fixed(100.0);
  ScopedClock scoped(&fixed);

  // A second thread leaves its last words in the recorder; the stall dump
  // must carry them even though the thread is long gone.
  roc::Thread other([] {
    flight::set_thread_name("bystander thread");
    flight::record(flight::EventKind::kInstant, "test", "bystander.mark",
                   now(), 0, nullptr);
  });
  other.join();

  const std::uint64_t missed_before =
      global().counter("telemetry.watchdog.missed").value();
  watchdog::beat("test.stalled_worker", 5.0);
  EXPECT_EQ(watchdog::poll(), 0);  // fresh beat: not overdue

  fixed.t_ = 110.0;  // 10 s since the beat, deadline 5 s
  EXPECT_EQ(watchdog::poll(), 1);
  EXPECT_EQ(global().counter("telemetry.watchdog.missed").value(),
            missed_before + 1);
  EXPECT_DOUBLE_EQ(
      global().gauge("telemetry.watchdog.test.stalled_worker.age_seconds")
          .value(),
      10);
  EXPECT_DOUBLE_EQ(
      global()
          .gauge("telemetry.watchdog.test.stalled_worker.deadline_seconds")
          .value(),
      5);

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty()) << "watchdog stall did not dump to " << path;
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("watchdog stall: test.stalled_worker"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"watchdog\""), std::string::npos);
  // Every thread's last events are in the dump, not just the poller's.
  EXPECT_NE(json.find("\"bystander thread\""), std::string::npos);
  EXPECT_NE(json.find("\"bystander.mark\""), std::string::npos);
  EXPECT_TRUE(capture.contains("watchdog"));

  // One alarm per stall: a second poll stays overdue but fires nothing.
  std::remove(path.c_str());
  EXPECT_EQ(watchdog::poll(), 1);
  EXPECT_EQ(global().counter("telemetry.watchdog.missed").value(),
            missed_before + 1);
  EXPECT_TRUE(slurp(path).empty());

  // Recovery rearms the alarm.
  watchdog::beat("test.stalled_worker", 5.0);
  EXPECT_EQ(watchdog::poll(), 0);
  fixed.t_ = 130.0;
  EXPECT_EQ(watchdog::poll(), 1);
  EXPECT_EQ(global().counter("telemetry.watchdog.missed").value(),
            missed_before + 2);
  std::remove(path.c_str());
  watchdog::reset_for_testing();
}

TEST(Watchdog, RetiredHeartbeatIsNotPolled) {
  watchdog::reset_for_testing();
  ScopedLogCapture capture(LogLevel::kDebug);
  FixedClock fixed(100.0);
  ScopedClock scoped(&fixed);
  watchdog::beat("test.retiring_worker", 1.0);
  EXPECT_EQ(watchdog::heartbeat_count(), 1u);
  watchdog::retire("test.retiring_worker");
  fixed.t_ = 200.0;
  EXPECT_EQ(watchdog::poll(), 0);  // retired: a clean exit, not a stall
  watchdog::beat("test.retiring_worker", 1.0);  // re-registering revives it
  fixed.t_ = 300.0;
  EXPECT_EQ(watchdog::poll(), 1);
  watchdog::reset_for_testing();
}

#endif  // !ROCPIO_TELEMETRY_DISABLED

// --- log satellites ---------------------------------------------------------

TEST(LogMacro, EvaluatesLevelExactlyOnce) {
  ScopedLogCapture capture(LogLevel::kDebug);
  int level_evals = 0;
  auto level = [&] {
    ++level_evals;
    return LogLevel::kWarn;
  };
  ROC_LOG(level()) << "once";
  EXPECT_EQ(level_evals, 1);
  ASSERT_EQ(capture.size(), 1u);
  EXPECT_EQ(capture.lines()[0].msg, "once");
}

TEST(LogMacro, FilteredLineEvaluatesNoOperands) {
  ScopedLogCapture capture(LogLevel::kError);
  int operand_evals = 0;
  auto operand = [&] {
    ++operand_evals;
    return "expensive";
  };
  ROC_DEBUG << operand();
  EXPECT_EQ(operand_evals, 0);
  EXPECT_EQ(capture.size(), 0u);
  ROC_ERROR << operand();
  EXPECT_EQ(operand_evals, 1);
  EXPECT_TRUE(capture.contains("expensive"));
}

TEST(LogMacro, BindsCorrectlyInUnbracedIfElse) {
  ScopedLogCapture capture(LogLevel::kDebug);
  bool took_else = false;
  if (true)
    ROC_WARN << "then-branch";
  else
    took_else = true;  // a dangling-else capture would run this
  EXPECT_FALSE(took_else);
  EXPECT_TRUE(capture.contains("then-branch"));

  if (false)
    ROC_WARN << "not emitted";
  else
    took_else = true;
  EXPECT_TRUE(took_else);
  EXPECT_FALSE(capture.contains("not emitted"));
}

TEST(LogCapture, RestoresSinkAndLevelOnExit) {
  const LogLevel before = log_level();
  {
    ScopedLogCapture outer(LogLevel::kDebug);
    {
      ScopedLogCapture inner(LogLevel::kError);
      log_line(LogLevel::kError, "to inner");
      EXPECT_EQ(log_level(), LogLevel::kError);
    }
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    log_line(LogLevel::kInfo, "to outer");
    EXPECT_TRUE(outer.contains("to outer"));
    EXPECT_FALSE(outer.contains("to inner"));
  }
  EXPECT_EQ(log_level(), before);
}

TEST(LogMirror, ErrorLinesBecomeTraceInstants) {
  ScopedLogCapture capture(LogLevel::kDebug);  // keep stderr quiet
  ScopedTracing tracing;
  ROC_ERROR << "disk on fire";
  ROC_WARN << "only a warning";
  const Trace t = collect_trace();
  int error_instants = 0;
  for (const TraceEvent& e : t.events) {
    if (std::string(e.category) != "log") continue;
    ++error_instants;
    EXPECT_LT(e.dur, 0.0);
    EXPECT_EQ(e.detail, "disk on fire");
  }
  EXPECT_EQ(error_instants, 1);
  // The sink still got both lines: the mirror is an observer, not a tee.
  EXPECT_TRUE(capture.contains("disk on fire"));
  EXPECT_TRUE(capture.contains("only a warning"));
}

// --- stats views ------------------------------------------------------------

TEST(StatsView, RochdfStatsMirrorsItsRegistry) {
  vfs::MemFileSystem fs;
  comm::World::run(1, [&](comm::Comm& comm) {
    comm::RealEnv env;
    roccom::Roccom com;
    auto& w = com.create_window("fluid");
    auto b = mesh::MeshBlock::structured(0, {4, 4, 4});
    mesh::add_fluid_schema(b);
    w.register_pane(b.id(), &b);

    rochdf::Rochdf io(comm, env, fs, rochdf::Options{});
    io.write_attribute(com, roccom::IoRequest{"fluid", "all", "sv", 0.0});

    const auto s = io.stats();
    EXPECT_EQ(s.write_calls, 1u);
    EXPECT_EQ(s.blocks_written, 1u);
    EXPECT_EQ(s.files_written, 1u);
    // The struct is a view over the named metrics, not a second set of
    // counters.
    auto& reg = io.metrics();
    EXPECT_EQ(reg.counter("rochdf.write_calls").value(), s.write_calls);
    EXPECT_EQ(reg.counter("rochdf.blocks_written").value(),
              s.blocks_written);
    const std::string text = reg.to_text();
    EXPECT_NE(text.find("rochdf.write_calls 1"), std::string::npos);
  });
}

}  // namespace
}  // namespace roc::telemetry
