/// \file protocol_test.cpp
/// \brief Collective-sequence tests for the Rocpanda protocol: mixed
/// write/sync/read/list sequences, repeated syncs, interleaved windows,
/// fast-vs-slow client skew, and hierarchy-mode interactions — the
/// orderings that historically exposed the convoy/deadlock bugs fixed
/// during development.

#include <gtest/gtest.h>

#include <numeric>

#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "roccom/blockio.h"
#include "rocpanda/client.h"
#include "rocpanda/server.h"
#include "shdf/reader.h"
#include "vfs/vfs.h"

namespace roc::rocpanda {
namespace {

using roccom::IoRequest;
using roccom::Roccom;

// Piecewise append instead of `"lit" + std::to_string(...)`: the operator+
// form trips GCC 12's bogus -Werror=restrict at -O3 (PR105651).
std::string snap_name(const char* prefix, int snap) {
  std::string name = prefix;
  name += std::to_string(snap);
  return name;
}

mesh::MeshBlock make_block(int id, int n = 4) {
  auto b = mesh::MeshBlock::structured(id, {n, n, n});
  mesh::add_fluid_schema(b);
  auto& p = b.field("pressure");
  std::iota(p.data.begin(), p.data.end(), static_cast<double>(id * 100));
  return b;
}

void deploy(int nclients, int nservers, vfs::FileSystem& fs,
            ClientOptions copts,
            const std::function<void(comm::Comm&, RocpandaClient&,
                                     Roccom&, mesh::MeshBlock&)>& body) {
  comm::World::run(nclients + nservers, [&](comm::Comm& world) {
    comm::RealEnv env;
    const Layout layout(world.size(), nservers);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)run_server(world, *local, env, fs, layout, ServerOptions{});
      return;
    }
    RocpandaClient client(world, env, layout, copts);
    Roccom com;
    auto& w = com.create_window("w");
    auto b = make_block(local->rank());
    w.register_pane(b.id(), &b);
    body(*local, client, com, b);
    client.shutdown();
  });
}

class ProtocolSequences : public ::testing::TestWithParam<bool> {
 protected:
  ClientOptions opts() const {
    ClientOptions o;
    o.client_buffering = GetParam();
    return o;
  }
};

TEST_P(ProtocolSequences, WriteSyncWriteReadListMixed) {
  vfs::MemFileSystem fs;
  deploy(3, 1, fs, opts(),
         [&](comm::Comm& clients, RocpandaClient& panda, Roccom& com,
             mesh::MeshBlock& b) {
           panda.write_attribute(com, IoRequest{"w", "all", "s0", 0.0});
           panda.sync();
           b.field("pressure").data[0] = 42;
           panda.write_attribute(com, IoRequest{"w", "all", "s1", 0.0});
           const auto back = panda.fetch_blocks("s1", {clients.rank()});
           EXPECT_EQ(back[0].field("pressure").data[0], 42);
           EXPECT_EQ(panda.list_panes("s0"),
                     (std::vector<int>{0, 1, 2}));
           panda.write_attribute(com, IoRequest{"w", "all", "s2", 0.0});
           panda.sync();
         });
  EXPECT_EQ(fs.list("s2_s").size(), 1u);
}

TEST_P(ProtocolSequences, RepeatedSyncsIncludingEmptyOnes) {
  vfs::MemFileSystem fs;
  deploy(2, 1, fs, opts(),
         [&](comm::Comm&, RocpandaClient& panda, Roccom& com,
             mesh::MeshBlock&) {
           panda.sync();  // nothing outstanding
           panda.sync();
           panda.write_attribute(com, IoRequest{"w", "all", "r0", 0.0});
           panda.sync();
           panda.sync();
           EXPECT_GE(panda.stats().sync_calls, 4u);
         });
}

TEST_P(ProtocolSequences, SkewedClientsDoNotConvoy) {
  // A fast client races through writes + sync while slow clients are
  // still marshalling: the collective deferral must neither deadlock nor
  // mis-order (this is the exact pattern behind the historical convoy).
  vfs::MemFileSystem fs;
  deploy(4, 1, fs, opts(),
         [&](comm::Comm& clients, RocpandaClient& panda, Roccom& com,
             mesh::MeshBlock& b) {
           // Rank 0 writes tiny payloads (fast), others heavier (slow).
           if (clients.rank() != 0) {
             b.coords().assign(b.coords().size(), 1.0);
           }
           for (int s = 0; s < 3; ++s) {
             panda.write_attribute(
                 com, IoRequest{"w", "all", snap_name("k", s), 0.0});
           }
           panda.sync();
           const auto ids = panda.list_panes("k2");
           EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 3}));
         });
}

TEST_P(ProtocolSequences, AlternatingWindowsWithinSnapshot) {
  vfs::MemFileSystem fs;
  comm::World::run(3, [&](comm::Comm& world) {
    comm::RealEnv env;
    const Layout layout(3, 1);
    auto local = world.split(layout.is_server(world.rank()) ? 1 : 0,
                             world.rank());
    if (layout.is_server(world.rank())) {
      (void)run_server(world, *local, env, fs, layout, ServerOptions{});
      return;
    }
    RocpandaClient client(world, env, layout, opts());
    Roccom com;
    auto& wa = com.create_window("a");
    auto& wb = com.create_window("b");
    auto b1 = make_block(local->rank());
    auto b2 = make_block(10 + local->rank());
    wa.register_pane(b1.id(), &b1);
    wb.register_pane(b2.id(), &b2);
    // Interleaved multi-window output phases across two snapshots: the
    // per-(file, window) dataset groups must land intact.
    for (int snap = 0; snap < 2; ++snap) {
      const std::string base = snap_name("alt", snap);
      client.write_attribute(com, IoRequest{"a", "all", base, 0.0});
      client.write_attribute(com, IoRequest{"b", "all", base, 0.0});
    }
    client.sync();
    client.shutdown();
  });
  shdf::Reader r(fs, fs.list("alt0_s")[0]);
  EXPECT_EQ(roccom::pane_ids_in_file(r, "a").size(), 2u);
  EXPECT_EQ(roccom::pane_ids_in_file(r, "b").size(), 2u);
}

TEST_P(ProtocolSequences, ManySmallSnapshotsBackToBack) {
  vfs::MemFileSystem fs;
  deploy(2, 1, fs, opts(),
         [&](comm::Comm& clients, RocpandaClient& panda, Roccom& com,
             mesh::MeshBlock& b) {
           for (int s = 0; s < 12; ++s) {
             b.field("pressure").data[0] = s;
             panda.write_attribute(
                 com, IoRequest{"w", "all", snap_name("m", s), 0.0});
           }
           panda.sync();
           for (int s = 0; s < 12; ++s) {
             const auto back = panda.fetch_blocks(snap_name("m", s),
                                                  {clients.rank()});
             EXPECT_EQ(back[0].field("pressure").data[0],
                       static_cast<double>(s))
                 << "snapshot " << s;
           }
         });
}

INSTANTIATE_TEST_SUITE_P(BufferModes, ProtocolSequences, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Hierarchy" : "ServerOnly";
                         });

TEST(Protocol, SelectiveFieldThenMeshThenFullAcrossSnapshots) {
  vfs::MemFileSystem fs;
  deploy(2, 1, fs, ClientOptions{},
         [&](comm::Comm& clients, RocpandaClient& panda, Roccom& com,
             mesh::MeshBlock&) {
           panda.write_attribute(com, IoRequest{"w", "mesh", "sel0", 0.0});
           panda.write_attribute(com,
                                 IoRequest{"w", "pressure", "sel0", 0.0});
           panda.write_attribute(com, IoRequest{"w", "all", "sel1", 0.0});
           panda.sync();
           (void)clients;
         });
  shdf::Reader r0(fs, "sel0_s0000.shdf");
  EXPECT_TRUE(r0.has_dataset("w/block_000000/coords"));
  EXPECT_TRUE(r0.has_dataset("w/block_000000/field:pressure"));
  EXPECT_FALSE(r0.has_dataset("w/block_000000/field:velocity"));
  shdf::Reader r1(fs, "sel1_s0000.shdf");
  EXPECT_TRUE(r1.has_dataset("w/block_000001/field:velocity"));
}

}  // namespace
}  // namespace roc::rocpanda
