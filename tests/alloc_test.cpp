/// \file alloc_test.cpp
/// \brief The operator new/delete interposer (src/check/alloc_hook):
/// exact per-thread counts, exempt-vs-charged accounting, the scope
/// registry, abort mode, and the zero-allocation steady states of the
/// three hot pipelines (client marshal, rank-to-rank ship, server
/// pass-through write) on a 48^3 fluid block -- the runtime face of
/// rocanalyze R8.  Built only under ROCPIO_CHECK (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>

#include "check/alloc_hook.h"
#include "comm/thread_comm.h"
#include "mesh/generators.h"
#include "mesh/mesh_block.h"
#include "rocpanda/wire.h"
#include "shdf/writer.h"
#include "util/buffer.h"
#include "util/hot.h"
#include "util/thread.h"
#include "vfs/vfs.h"

namespace roc {
namespace {

/// Keeps new/delete pairs observable: C++14 lets the compiler elide an
/// allocation whose pointer provably never escapes, which would break the
/// exact-count assertions below.
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

mesh::MeshBlock fluid_block(int n) {
  auto b = mesh::MeshBlock::structured(1, {n, n, n});
  mesh::add_fluid_schema(b);
  auto& p = b.field("pressure");
  std::iota(p.data.begin(), p.data.end(), 0.0);
  return b;
}

// --- raw interposer counters -------------------------------------------------

TEST(AllocInterposer, CountsExactSingleThreadAllocations) {
  const uint64_t a0 = check::thread_allocs();
  const uint64_t f0 = check::thread_frees();
  const uint64_t b0 = check::thread_alloc_bytes();
  auto* arr = new uint64_t[4];
  auto* one = new uint64_t(7);
  escape(arr);
  escape(one);
  delete[] arr;
  delete one;
  EXPECT_EQ(check::thread_allocs() - a0, 2u);
  EXPECT_EQ(check::thread_frees() - f0, 2u);
  EXPECT_GE(check::thread_alloc_bytes() - b0, 5 * sizeof(uint64_t));
}

TEST(AllocInterposer, CountersArePerThread) {
  // The worker measures its own deltas; exactness shows the counters are
  // thread-local (cross-thread traffic would make them nondeterministic).
  const uint64_t total0 = check::total_allocs();
  uint64_t worker_allocs = 0;
  uint64_t worker_frees = 0;
  {
    Thread t([&] {
      const uint64_t a0 = check::thread_allocs();
      const uint64_t f0 = check::thread_frees();
      for (int i = 0; i < 5; ++i) {
        auto* p = new int(i);
        escape(p);
        delete p;
      }
      worker_allocs = check::thread_allocs() - a0;
      worker_frees = check::thread_frees() - f0;
    });
  }
  EXPECT_EQ(worker_allocs, 5u);
  EXPECT_EQ(worker_frees, 5u);
  EXPECT_GE(check::total_allocs() - total0, 5u);
}

// --- exempt vs charged accounting --------------------------------------------

TEST(AllocGate, ExemptAllocationsAreCountedButNotCharged) {
  const uint64_t a0 = check::thread_allocs();
  const uint64_t c0 = check::thread_charged_allocs();
  {
    ROC_ALLOC_EXEMPT();
    auto* p = new int(1);
    escape(p);
    delete p;
  }
  EXPECT_EQ(check::thread_allocs() - a0, 1u);   // raw truth
  EXPECT_EQ(check::thread_charged_allocs() - c0, 0u);  // sanctioned
  auto* q = new int(2);
  escape(q);
  delete q;
  EXPECT_EQ(check::thread_charged_allocs() - c0, 1u);
}

TEST(AllocGate, ScopeRegistryAccumulatesByLabel) {
  check::alloc_registry_reset();
  for (int pass = 0; pass < 2; ++pass) {
    void* tok = check::alloc_scope_enter("AllocGateTest::charged");
    auto* p = new int(pass);
    escape(p);
    delete p;
    check::alloc_scope_exit(tok);
  }
  {
    void* tok = check::alloc_scope_enter("AllocGateTest::clean");
    check::alloc_scope_exit(tok);
  }
  const check::AllocScopeStats* charged = nullptr;
  const check::AllocScopeStats* clean = nullptr;
  const auto snap = check::alloc_registry_snapshot();
  for (const auto& s : snap) {
    if (s.label == "AllocGateTest::charged") charged = &s;
    if (s.label == "AllocGateTest::clean") clean = &s;
  }
  ASSERT_NE(charged, nullptr);
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(charged->entries, 2u);
  EXPECT_EQ(charged->allocs, 2u);
  EXPECT_GE(charged->bytes, 2 * sizeof(int));
  EXPECT_FALSE(charged->frames.empty());
  EXPECT_EQ(clean->entries, 1u);
  EXPECT_EQ(clean->allocs, 0u);
}

TEST(AllocGateDeathTest, AbortModeTripsOnChargedAllocation) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The child flips to kAbort and allocates inside an open scope; the
  // parent's mode is untouched (death tests fork).
  EXPECT_DEATH(
      {
        check::set_alloc_mode(check::AllocMode::kAbort);
        void* tok = check::alloc_scope_enter("AllocAbort::scope");
        auto* p = new int(7);
        escape(p);
        check::alloc_scope_exit(tok);
      },
      "ROC_ASSERT_NO_ALLOC violated");
  EXPECT_EQ(check::alloc_mode(), check::AllocMode::kCount);
}

// --- zero-alloc steady states of the product pipelines -----------------------
//
// Each test warms one operation (pool seeding, capacity growth, writer
// setup are the sanctioned one-time costs), then asserts the steady-state
// repeats charge NOTHING.  These are the same three paths bench_micro
// gates via allocs_per_op and check_alloc_subset.py proves are inside the
// static R8 hot closure.

TEST(ZeroAllocPipeline, MarshalSteadyStateIsSilent) {
  const auto b = fluid_block(48);
  BufferPool pool;
  BufferChain chain;
  rocpanda::WireBlock::serialize_chain_into(b, "all", &pool, chain);
  { auto warm = pool.gather(chain); escape(warm.data()); }
  void* tok = check::alloc_scope_enter("ZeroAllocPipeline::marshal");
  const uint64_t c0 = check::thread_charged_allocs();
  for (int i = 0; i < 4; ++i) {
    rocpanda::WireBlock::serialize_chain_into(b, "all", &pool, chain);
    auto wire = pool.gather(chain);
    escape(wire.data());
  }
  const uint64_t charged = check::thread_charged_allocs() - c0;
  check::alloc_scope_exit(tok);
  EXPECT_EQ(charged, 0u);
}

TEST(ZeroAllocPipeline, ShipSteadyStateIsSilent) {
  const auto b = fluid_block(48);
  std::atomic<uint64_t> charged{0};
  comm::World::run(2, [&](comm::Comm& comm) {
    if (comm.rank() == 0) {
      BufferPool pool;
      BufferChain chain;
      rocpanda::WireBlock::serialize_chain_into(b, "all", &pool, chain);
      comm.sendv(1, 1, chain);  // warm-up ship, excluded from accounting
      const uint64_t c0 = check::thread_charged_allocs();
      for (int i = 0; i < 4; ++i) {
        rocpanda::WireBlock::serialize_chain_into(b, "all", &pool, chain);
        comm.sendv(1, 1, chain);
      }
      charged.fetch_add(check::thread_charged_allocs() - c0,
                        std::memory_order_relaxed);
    } else {
      for (int i = 0; i < 5; ++i) {
        auto m = comm.recv(0, 1);
        escape(m.payload.data());
      }
    }
  });
  EXPECT_EQ(charged.load(), 0u);
}

TEST(ZeroAllocPipeline, PassThroughWriteSteadyStateIsSilent) {
  const auto b = fluid_block(48);
  const SharedBuffer wire = SharedBuffer::adopt(
      rocpanda::WireBlock::from_block(b, "all").serialize());
  const auto view = rocpanda::WireBlockView::parse(wire);
  rocpanda::WriteScratch scratch;
  vfs::MemFileSystem fs;
  shdf::Writer w(fs, "f");
  view.write_to(w, "wa0", 0.0, shdf::Codec::kNone, &scratch);  // warm
  void* tok = check::alloc_scope_enter("ZeroAllocPipeline::pass_through");
  const uint64_t c0 = check::thread_charged_allocs();
  view.write_to(w, "wa1", 0.0, shdf::Codec::kNone, &scratch);
  view.write_to(w, "wa2", 0.0, shdf::Codec::kNone, &scratch);
  const uint64_t charged = check::thread_charged_allocs() - c0;
  check::alloc_scope_exit(tok);
  EXPECT_EQ(charged, 0u);
}

}  // namespace
}  // namespace roc
