/// \file sim_model_test.cpp
/// \brief Properties of the simulator's cost models: platform presets,
/// OS-noise scaling with node count, byte_scale linearity, contention
/// response, aux-worker CPU accounting, and failure injection (a crashed
/// client is detected as a deadlock, never a hang).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "mesh/generators.h"
#include "roccom/roccom.h"
#include "rocpanda/client.h"
#include "rocpanda/server.h"
#include "rocpanda/wire.h"
#include "sim/platform.h"
#include "sim/sim_comm.h"
#include "sim/sim_env.h"
#include "sim/sim_fs.h"
#include "sim/simulation.h"

namespace roc::sim {
namespace {

// Piecewise append instead of `"lit" + std::to_string(...)`: the operator+
// form trips GCC 12's bogus -Werror=restrict at -O3 (PR105651).
std::string seq_name(const char* prefix, int i) {
  std::string name = prefix;
  name += std::to_string(i);
  return name;
}

TEST(Platforms, PresetsAreInternallyConsistent) {
  for (const Platform& p : {turing_platform(), frost_platform()}) {
    EXPECT_GE(p.node.cpus, 1) << p.name;
    EXPECT_GT(p.net.intra_bandwidth, 0.0) << p.name;
    EXPECT_GT(p.net.inter_bandwidth, 0.0) << p.name;
    EXPECT_GE(p.fs.write_channels, 1) << p.name;
    EXPECT_GE(p.fs.read_channels, 1) << p.name;
    EXPECT_GT(p.fs.write_bandwidth, 0.0) << p.name;
    EXPECT_GT(p.memcpy_bandwidth, 0.0) << p.name;
  }
  // The presets encode the paper's machines.
  EXPECT_EQ(turing_platform().node.cpus, 2);
  EXPECT_EQ(turing_platform().fs.write_channels, 1);   // one NFS server
  EXPECT_GT(turing_platform().net.interference_per_proc, 0.0);
  EXPECT_EQ(frost_platform().node.cpus, 16);
  EXPECT_EQ(frost_platform().fs.write_channels, 2);    // two GPFS servers
  EXPECT_GT(frost_platform().node.os_noise_fraction, 0.0);
}

/// Per-step-synchronized compute on `nodes` full nodes; returns the total
/// time (the Fig 3(b) 16NS pattern).
double noisy_compute_time(int nodes, int steps) {
  Platform p = frost_platform();
  Simulation sim(p);
  const int nprocs = nodes * p.node.cpus;
  auto world = std::make_shared<SimWorld>(sim, nprocs);
  std::vector<double> t(static_cast<size_t>(nprocs), 0);
  for (int r = 0; r < nprocs; ++r) {
    sim.add_process([world, &t, steps](ProcContext& ctx) {
      auto comm = world->attach();
      for (int s = 0; s < steps; ++s) {
        ctx.compute(1.0);
        comm->barrier();
      }
      t[static_cast<size_t>(comm->rank())] = ctx.now();
    });
  }
  sim.run();
  return *std::max_element(t.begin(), t.end());
}

TEST(OsNoise, LossGrowsWithNodeCountUnderSynchronization) {
  // E[max over nodes of the noise] grows with the node count -- the
  // mechanism behind Fig 3(b)'s 16NS curve.
  const double t1 = noisy_compute_time(1, 10);
  const double t4 = noisy_compute_time(4, 10);
  const double t16 = noisy_compute_time(16, 10);
  EXPECT_GT(t1, 10.0);   // fully-busy node: some noise
  EXPECT_LT(t1, t4);
  EXPECT_LT(t4, t16);
  EXPECT_LT(t16, 10.0 * 1.5);  // bounded, not runaway
}

TEST(ByteScale, CostsScaleLinearlyWithoutChangingProtocol) {
  auto run_with_scale = [](double scale) {
    Platform p;  // generic platform, no noise
    p.byte_scale = scale;
    p.net.inter_latency = 0;  // isolate the bandwidth term
    p.net.intra_latency = 0;
    Simulation sim(p);
    auto world = std::make_shared<SimWorld>(sim, 2);
    double elapsed = 0;
    for (int r = 0; r < 2; ++r) {
      sim.add_process([world, &elapsed](ProcContext& ctx) {
        auto comm = world->attach();
        std::vector<unsigned char> mb(1'000'000);
        if (comm->rank() == 0) {
          comm->send(1, 1, mb.data(), mb.size());
        } else {
          (void)comm->recv(0, 1);
          elapsed = ctx.now();
        }
      });
    }
    sim.run();
    return elapsed;
  };
  const double t1 = run_with_scale(1.0);
  const double t4 = run_with_scale(4.0);
  EXPECT_NEAR(t4 / t1, 4.0, 0.01);
}

TEST(Contention, MoreConcurrentWritersRaiseOpOverhead) {
  // Measure one process's write time alone vs with 31 other open writers.
  auto op_time = [](int other_writers) {
    Platform p;
    p.fs.contention_a = 2.9;
    p.fs.contention_c0 = 32;
    p.fs.contention_p = 4.4;
    p.fs.write_op_overhead = 1e-3;
    p.fs.write_bandwidth = 1e12;  // isolate the overhead term
    p.fs.open_cost = 0;
    p.fs.close_cost = 0;
    p.fs.cpu_fraction = 0;
    p.fs.write_channels = 64;  // no queueing, only the multiplier
    Simulation sim(p);
    auto fs = std::make_shared<SimFileSystem>(sim);
    double dt = 0;
    sim.add_process([fs, other_writers, &dt](ProcContext& ctx) {
      std::vector<std::unique_ptr<vfs::File>> held;
      for (int i = 0; i < other_writers; ++i)
        held.push_back(fs->open(seq_name("h", i),
                                vfs::OpenMode::kTruncate));
      auto f = fs->open("mine", vfs::OpenMode::kTruncate);
      const double t0 = ctx.now();
      int x = 7;
      f->write(&x, sizeof(x));
      dt = ctx.now() - t0;
    });
    sim.run();
    return dt;
  };
  const double alone = op_time(0);
  const double crowded = op_time(31);  // at the c0=32 peak
  EXPECT_GT(crowded, alone * 2);
}

TEST(AuxWorkers, DoNotOccupyACpuSlot) {
  // A T-Rochdf-style worker on a full node must not push the node into
  // the no-idle-CPU noise regime by itself.
  Platform p;
  p.node.cpus = 2;
  p.node.os_noise_fraction = 0.5;  // huge, to make any regression obvious
  Simulation sim(p);
  double t0 = -1, t1 = -1;
  // Two main processes fill the node; one spawns an idle-ish worker.
  sim.add_process([&](ProcContext& ctx) {
    SimEnv env(ctx.sim());
    auto gate = env.make_gate();
    bool stop = false;
    auto worker = env.spawn_worker([&] {
      comm::GateLock lock(*gate);
      while (!stop) gate->wait();
    });
    ctx.compute(1.0);  // both CPUs busy -> noise applies regardless
    t0 = ctx.now();
    {
      comm::GateLock lock(*gate);
      stop = true;
      gate->notify_all();
    }
    worker->join();
  });
  sim.add_process([&](ProcContext& ctx) {
    ctx.compute(1.0);
    t1 = ctx.now();
  });
  sim.run();
  // Noise hit (no idle CPU among the MAIN processes), but the worker
  // itself added no extra occupancy: both finish in the same regime.
  EXPECT_GT(std::max(t0, t1), 1.0);
  EXPECT_LT(std::max(t0, t1), 5.0);
}

TEST(FailureInjection, CrashedClientIsDetectedNotHung) {
  // A client that dies mid-protocol (no shutdown, no blocks after the
  // header) leaves the server waiting forever; the simulator detects the
  // quiescent deadlock instead of hanging.
  Platform p;
  Simulation sim(p);
  auto world = std::make_shared<SimWorld>(sim, 3);
  auto fs = std::make_shared<SimFileSystem>(sim);
  for (int r = 0; r < 3; ++r) {
    sim.add_process([world, fs](ProcContext& ctx) {
      auto comm = world->attach();
      SimEnv env(ctx.sim());
      const rocpanda::Layout layout(3, 1);
      auto local = comm->split(layout.is_server(comm->rank()) ? 1 : 0,
                               comm->rank());
      if (layout.is_server(comm->rank())) {
        (void)rocpanda::run_server(*comm, *local, env, *fs, layout,
                                   rocpanda::ServerOptions{});
        return;
      }
      if (comm->rank() == 1) {
        // "Crash": announce two blocks, deliver none, vanish.
        rocpanda::WriteHeader h{"crash", "w", "all", 0.0, 2};
        comm->send(0, rocpanda::kTagWriteBegin, h.serialize());
        return;
      }
      // The healthy client completes and shuts down.
      roccom::Roccom com;
      auto& w = com.create_window("w");
      auto b = mesh::MeshBlock::structured(0, {3, 3, 3});
      mesh::add_fluid_schema(b);
      w.register_pane(0, &b);
      rocpanda::RocpandaClient client(*comm, env, layout);
      client.write_attribute(com, roccom::IoRequest{"w", "all", "crash", 0});
      client.shutdown();
    });
  }
  EXPECT_THROW(sim.run(), CommError);  // "simulation deadlock: ..."
}

TEST(Determinism, WholeRocpandaDeploymentIsBitStable) {
  auto run_once = [] {
    Platform p = turing_platform();
    Simulation sim(p);
    auto world = std::make_shared<SimWorld>(sim, 5);
    auto fs = std::make_shared<SimFileSystem>(sim);
    for (int r = 0; r < 5; ++r) {
      sim.add_process([world, fs](ProcContext& ctx) {
        auto comm = world->attach();
        SimEnv env(ctx.sim());
        const rocpanda::Layout layout(5, 1);
        auto local = comm->split(layout.is_server(comm->rank()) ? 1 : 0,
                                 comm->rank());
        if (layout.is_server(comm->rank())) {
          (void)rocpanda::run_server(*comm, *local, env, *fs, layout,
                                     rocpanda::ServerOptions{});
          return;
        }
        roccom::Roccom com;
        auto& w = com.create_window("w");
        auto b = mesh::MeshBlock::structured(local->rank(), {5, 5, 5});
        mesh::add_fluid_schema(b);
        w.register_pane(b.id(), &b);
        rocpanda::RocpandaClient client(*comm, env, layout);
        for (int s = 0; s < 3; ++s) {
          ctx.compute(0.5);
          client.write_attribute(
              com, roccom::IoRequest{"w", "all", seq_name("d", s),
                                     0.0});
        }
        client.sync();
        client.shutdown();
      });
    }
    sim.run();
    return sim.now();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace roc::sim
